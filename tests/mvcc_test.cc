// Epoch-snapshot MVCC tests: reader sessions pinned before a mutation keep
// seeing the old rows, readers after the commit see the new ones, explicit
// pins are repeatable across writer churn, and the background machinery
// (off-thread checkpoint, time-based group commit) preserves the durability
// contract. The reader/writer stress cases double as the TSan smoke target.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/store.h"
#include "rdb/database.h"
#include "rdb/vfs.h"
#include "rdb/wal.h"
#include "test_util.h"

namespace xupd {
namespace {

using engine::DeleteStrategy;
using engine::InsertStrategy;
using engine::RelationalStore;

/// A scratch data directory, removed (with its contents) on destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/xupd_mvcc_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path_ = p == nullptr ? "/tmp/xupd_mvcc_fallback" : p;
  }
  ~TempDir() {
    DIR* d = ::opendir(path_.c_str());
    if (d != nullptr) {
      while (dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        std::remove((path_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void Must(rdb::Database* db, const std::string& sql) {
  Status s = db->Execute(sql);
  ASSERT_TRUE(s.ok()) << sql << ": " << s;
}

int64_t WriterCount(rdb::Database* db, const std::string& sql) {
  auto r = db->ExecuteQuery(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
  return r.ok() ? r->rows[0][0].AsInt() : -1;
}

int64_t ReaderCount(rdb::ReaderSession* rs, const std::string& sql) {
  auto r = rs->ExecuteQuery(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
  return r.ok() ? r->rows[0][0].AsInt() : -1;
}

// ---------------------------------------------------------------------------
// rdb layer: snapshot visibility

TEST(MvccTest, PinnedReaderSeesPreDeleteRows) {
  rdb::Database db;
  Must(&db, "CREATE TABLE t (id INTEGER, v INTEGER)");
  for (int i = 0; i < 10; ++i) {
    Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ", 1)");
  }
  auto rs = db.OpenReaderSession();
  ASSERT_TRUE(rs.ok()) << rs.status();
  (*rs)->PinSnapshot();
  Must(&db, "DELETE FROM t WHERE id < 5");
  // The pinned reader still scans the pre-delete snapshot...
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t"), 10);
  // ...while the writer already sees the new state.
  EXPECT_EQ(WriterCount(&db, "SELECT COUNT(*) FROM t"), 5);
  (*rs)->Unpin();
  // A fresh statement pins the current epoch and sees the delete.
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t"), 5);
}

TEST(MvccTest, PinnedReaderSeesPreInsertState) {
  rdb::Database db;
  Must(&db, "CREATE TABLE t (id INTEGER)");
  Must(&db, "INSERT INTO t VALUES (1)");
  auto rs = db.OpenReaderSession();
  ASSERT_TRUE(rs.ok()) << rs.status();
  (*rs)->PinSnapshot();
  Must(&db, "INSERT INTO t VALUES (2)");
  Must(&db, "INSERT INTO t VALUES (3)");
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t"), 1);
  (*rs)->Unpin();
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t"), 3);
}

TEST(MvccTest, PinnedReaderSeesPreUpdateValuesThroughVersionBuffer) {
  rdb::Database db;
  Must(&db, "CREATE TABLE t (id INTEGER, v INTEGER)");
  for (int i = 0; i < 8; ++i) {
    Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ", 100)");
  }
  auto rs = db.OpenReaderSession();
  ASSERT_TRUE(rs.ok()) << rs.status();
  (*rs)->PinSnapshot();
  Must(&db, "UPDATE t SET v = 200 WHERE id >= 4");
  // In-place updates copy the pre-image into the version buffer; the pinned
  // reader reconstructs the old values.
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT SUM(v) FROM t"), 800);
  EXPECT_EQ(WriterCount(&db, "SELECT SUM(v) FROM t"), 1200);
  (*rs)->Unpin();
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT SUM(v) FROM t"), 1200);
}

TEST(MvccTest, VersionBufferTrimsWhenPinnedReaderReleases) {
  // Epoch-aware GC (PR 9): pre-images parked for a pinned reader survive
  // exactly as long as the pin, and their reclamation is observable through
  // the mvcc.* telemetry.
  rdb::Database db;
  Must(&db, "CREATE TABLE t (id INTEGER, v INTEGER)");
  for (int i = 0; i < 8; ++i) {
    Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ", 100)");
  }
  std::atomic<int64_t>* version_rows = db.metrics().Gauge("mvcc.version_rows");
  std::atomic<uint64_t>* gc_rows = db.metrics().Counter("mvcc.version_gc_rows");
  std::atomic<int64_t>* lag = db.metrics().Gauge("epoch.lag");
  const uint64_t gc_before = gc_rows->load(std::memory_order_relaxed);

  auto rs = db.OpenReaderSession();
  ASSERT_TRUE(rs.ok()) << rs.status();
  (*rs)->PinSnapshot();
  Must(&db, "UPDATE t SET v = 200 WHERE id >= 4");
  // The four pre-images are parked: the commit boundary saw the pin and
  // kept them, reporting them in the version-buffer gauge and as lag.
  EXPECT_GE(version_rows->load(std::memory_order_relaxed), 4);
  EXPECT_GT(lag->load(std::memory_order_relaxed), 0);
  EXPECT_EQ(gc_rows->load(std::memory_order_relaxed), gc_before);
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT SUM(v) FROM t"), 800);

  (*rs)->Unpin();
  // The next commit boundary sees no pin: min-pinned advances past the
  // retire epoch and the buffer is trimmed, proven by the counter.
  Must(&db, "INSERT INTO t VALUES (99, 0)");
  EXPECT_EQ(version_rows->load(std::memory_order_relaxed), 0);
  EXPECT_GE(gc_rows->load(std::memory_order_relaxed), gc_before + 4);
  EXPECT_EQ(lag->load(std::memory_order_relaxed), 0);
  // The reader now reconstructs nothing — it reads the live rows.
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT SUM(v) FROM t"), 1200);
}

TEST(MvccTest, UncommittedTransactionInvisibleToReaders) {
  rdb::Database db;
  Must(&db, "CREATE TABLE t (id INTEGER)");
  Must(&db, "INSERT INTO t VALUES (1)");
  auto rs = db.OpenReaderSession();
  ASSERT_TRUE(rs.ok()) << rs.status();
  Must(&db, "BEGIN");
  Must(&db, "INSERT INTO t VALUES (2)");
  Must(&db, "DELETE FROM t WHERE id = 1");
  // Epochs advance only at outermost commit boundaries, so a statement-pinned
  // reader cannot observe the open transaction's effects.
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t"), 1);
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t WHERE id = 1"), 1);
  Must(&db, "COMMIT");
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t"), 1);
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t WHERE id = 2"), 1);
}

TEST(MvccTest, RolledBackTransactionNeverVisibleToReaders) {
  rdb::Database db;
  Must(&db, "CREATE TABLE t (id INTEGER)");
  Must(&db, "INSERT INTO t VALUES (1)");
  auto rs = db.OpenReaderSession();
  ASSERT_TRUE(rs.ok()) << rs.status();
  Must(&db, "BEGIN");
  Must(&db, "INSERT INTO t VALUES (2)");
  Must(&db, "ROLLBACK");
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t"), 1);
  EXPECT_EQ(WriterCount(&db, "SELECT COUNT(*) FROM t"), 1);
}

TEST(MvccTest, ExplicitPinIsRepeatableAcrossWriterChurn) {
  rdb::Database db;
  Must(&db, "CREATE TABLE t (id INTEGER)");
  for (int i = 0; i < 4; ++i) {
    Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  auto rs = db.OpenReaderSession();
  ASSERT_TRUE(rs.ok()) << rs.status();
  uint64_t pin = (*rs)->PinSnapshot();
  EXPECT_GT(pin, 0u);
  EXPECT_TRUE((*rs)->pinned());
  int64_t first = ReaderCount(rs->get(), "SELECT COUNT(*) FROM t");
  for (int i = 0; i < 20; ++i) {
    Must(&db, "INSERT INTO t VALUES (100)");
    Must(&db, "DELETE FROM t WHERE id = " + std::to_string(i % 4));
    // Repeatable reads: every query inside the pin sees the same snapshot.
    EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t"), first);
  }
  (*rs)->Unpin();
  EXPECT_FALSE((*rs)->pinned());
  EXPECT_NE(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t"), first);
}

TEST(MvccTest, ReaderSessionRejectsMutationsAndAnalyze) {
  rdb::Database db;
  Must(&db, "CREATE TABLE t (id INTEGER)");
  auto rs = db.OpenReaderSession();
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_FALSE((*rs)->ExecuteQuery("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE((*rs)->ExecuteQuery("DELETE FROM t").ok());
  EXPECT_FALSE((*rs)->ExecuteQuery("DROP TABLE t").ok());
  EXPECT_FALSE((*rs)->ExecuteQuery("CREATE TABLE u (id INTEGER)").ok());
  EXPECT_FALSE((*rs)->ExecuteQuery("EXPLAIN ANALYZE SELECT * FROM t").ok());
  // Plain EXPLAIN of a SELECT is allowed (no execution).
  EXPECT_TRUE((*rs)->ExecuteQuery("EXPLAIN SELECT * FROM t").ok());
}

TEST(MvccTest, ReaderPlanCacheTracksDdl) {
  rdb::Database db;
  Must(&db, "CREATE TABLE t (id INTEGER)");
  Must(&db, "INSERT INTO t VALUES (1)");
  auto rs = db.OpenReaderSession();
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t"), 1);
  Must(&db, "DROP TABLE t");
  // The cached plan's table dependency is gone; the reader must not scan a
  // dangling Table*.
  EXPECT_FALSE((*rs)->ExecuteQuery("SELECT COUNT(*) FROM t").ok());
  Must(&db, "CREATE TABLE t (id INTEGER, v INTEGER)");
  Must(&db, "INSERT INTO t VALUES (7, 8)");
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM t"), 1);
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT SUM(v) FROM t"), 8);
}

TEST(MvccTest, ReaderQueriesWithPredicatesJoinsAndParams) {
  rdb::Database db;
  Must(&db, "CREATE TABLE a (id INTEGER, bid INTEGER)");
  Must(&db, "CREATE TABLE b (id INTEGER, name VARCHAR)");
  Must(&db, "CREATE INDEX idx_b_id ON b (id)");
  Must(&db, "INSERT INTO b VALUES (1, 'x')");
  Must(&db, "INSERT INTO b VALUES (2, 'y')");
  Must(&db, "INSERT INTO a VALUES (10, 1)");
  Must(&db, "INSERT INTO a VALUES (11, 2)");
  Must(&db, "INSERT INTO a VALUES (12, 2)");
  auto rs = db.OpenReaderSession();
  ASSERT_TRUE(rs.ok()) << rs.status();
  // Joins run on snapshot scans (index probes are disabled for readers).
  EXPECT_EQ(ReaderCount(rs->get(),
                        "SELECT COUNT(*) FROM a, b "
                        "WHERE a.bid = b.id AND b.name = 'y'"),
            2);
  auto bound = (*rs)->ExecuteQueryBound(
      "SELECT COUNT(*) FROM a WHERE bid = ?", {rdb::Value::Int(2)});
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->rows[0][0].AsInt(), 2);
  // Cached-plan re-execution with different params stays consistent.
  bound = (*rs)->ExecuteQueryBound("SELECT COUNT(*) FROM a WHERE bid = ?",
                                   {rdb::Value::Int(1)});
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->rows[0][0].AsInt(), 1);
}

// ---------------------------------------------------------------------------
// engine layer: every delete/insert strategy preserves snapshot isolation

class MvccDeleteStrategyTest
    : public ::testing::TestWithParam<DeleteStrategy> {};

TEST_P(MvccDeleteStrategyTest, PinnedReaderSeesPreDeleteSubtrees) {
  auto dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  RelationalStore::Options options;
  options.delete_strategy = GetParam();
  options.insert_strategy = InsertStrategy::kTable;
  auto store = RelationalStore::Create(dtd, options);
  ASSERT_TRUE(store.ok()) << store.status();
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  ASSERT_TRUE((*store)->Load(*doc).ok());

  auto rs = (*store)->db()->OpenReaderSession();
  ASSERT_TRUE(rs.ok()) << rs.status();
  (*rs)->PinSnapshot();
  ASSERT_TRUE((*store)->DeleteWhere("Customer", "Name = 'John'").ok());
  // Pinned before the delete: the whole subtree is still visible.
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM Customer"), 3);
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM Order"), 3);
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM OrderLine"), 4);
  (*rs)->Unpin();
  // After the commit: the reader sees the post-delete state.
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM Customer"), 1);
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM Order"), 1);
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM OrderLine"), 1);
}

INSTANTIATE_TEST_SUITE_P(AllDeleteStrategies, MvccDeleteStrategyTest,
                         ::testing::Values(DeleteStrategy::kPerTupleTrigger,
                                           DeleteStrategy::kPerStatementTrigger,
                                           DeleteStrategy::kCascade,
                                           DeleteStrategy::kAsr));

class MvccInsertStrategyTest
    : public ::testing::TestWithParam<InsertStrategy> {};

TEST_P(MvccInsertStrategyTest, PinnedReaderSeesPreInsertSubtrees) {
  auto dtd = xupd::testing::MustParseDtd(xupd::testing::kCustomerDtd);
  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kPerTupleTrigger;
  options.insert_strategy = GetParam();
  auto store = RelationalStore::Create(dtd, options);
  ASSERT_TRUE(store.ok()) << store.status();
  auto doc = xupd::testing::MustParse(xupd::testing::kCustomerXml);
  ASSERT_TRUE((*store)->Load(*doc).ok());

  auto rs = (*store)->db()->OpenReaderSession();
  ASSERT_TRUE(rs.ok()) << rs.status();
  (*rs)->PinSnapshot();
  ASSERT_TRUE((*store)
                  ->CopySubtreesWhere("Customer", "Name = 'Mary'",
                                      (*store)->root_id())
                  .ok());
  // Pinned before the copy: old counts.
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM Customer"), 3);
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM Order"), 3);
  (*rs)->Unpin();
  // After the commit: Mary's subtree is duplicated.
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM Customer"), 4);
  EXPECT_EQ(ReaderCount(rs->get(), "SELECT COUNT(*) FROM Order"), 4);
}

INSTANTIATE_TEST_SUITE_P(AllInsertStrategies, MvccInsertStrategyTest,
                         ::testing::Values(InsertStrategy::kTuple,
                                           InsertStrategy::kTable,
                                           InsertStrategy::kAsr));

// ---------------------------------------------------------------------------
// background checkpoint

TEST(MvccTest, BackgroundCheckpointConcurrentWithCommits) {
  TempDir dir;
  {
    rdb::Database db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    Must(&db, "CREATE TABLE t (id INTEGER)");
    for (int i = 0; i < 50; ++i) {
      Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
    }
    ASSERT_TRUE(db.CheckpointBackground().ok());
    EXPECT_FALSE(db.CheckpointBackground().ok());  // one at a time
    // The writer keeps committing while the checkpointer serializes its
    // pinned snapshot.
    for (int i = 50; i < 80; ++i) {
      Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
    }
    ASSERT_TRUE(db.CheckpointWait().ok());
    EXPECT_FALSE(db.checkpoint_running());
    for (int i = 80; i < 90; ++i) {
      Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
    }
  }
  // Recovery = snapshot (first 50 rows at the pinned epoch) + WAL suffix
  // (everything after the recorded offset): nothing lost, nothing doubled.
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir.path()).ok());
  EXPECT_TRUE(db2.recovered());
  EXPECT_EQ(WriterCount(&db2, "SELECT COUNT(*) FROM t"), 90);
  EXPECT_EQ(WriterCount(&db2, "SELECT SUM(id) FROM t"), 90 * 89 / 2);
}

TEST(MvccTest, BackgroundCheckpointSnapshotExcludesLaterCommits) {
  TempDir dir;
  {
    rdb::Database db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    Must(&db, "CREATE TABLE t (id INTEGER)");
    Must(&db, "INSERT INTO t VALUES (1)");
    ASSERT_TRUE(db.CheckpointBackground().ok());
    Must(&db, "INSERT INTO t VALUES (2)");
    Must(&db, "DELETE FROM t WHERE id = 1");
    ASSERT_TRUE(db.CheckpointWait().ok());
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir.path()).ok());
  EXPECT_EQ(WriterCount(&db2, "SELECT COUNT(*) FROM t"), 1);
  EXPECT_EQ(WriterCount(&db2, "SELECT COUNT(*) FROM t WHERE id = 2"), 1);
}

// ---------------------------------------------------------------------------
// group commit: bounded loss under power loss

TEST(MvccTest, BatchedSyncLosesAtMostTheUnsyncedWindow) {
  TempDir dir;
  rdb::FaultVfs fault(rdb::Vfs::Default());
  {
    rdb::Database db;
    rdb::DurabilityOptions opts;
    opts.sync_mode = rdb::SyncMode::kBatched;
    // A very long window keeps the flusher idle for the whole test, so
    // every post-checkpoint commit is acknowledged but unsynced.
    opts.group_commit_window_us = 60 * 1000 * 1000;
    opts.vfs = &fault;
    ASSERT_TRUE(db.Open(dir.path(), opts).ok());
    Must(&db, "CREATE TABLE t (id INTEGER)");
    for (int i = 0; i < 10; ++i) {
      Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
    }
    // Checkpoint fsyncs everything committed so far.
    ASSERT_TRUE(db.Checkpoint().ok());
    // These commits are acknowledged under kBatched without an fsync.
    for (int i = 10; i < 15; ++i) {
      Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
    }
    fault.SimulatePowerLoss();
    // The dying process's close-path writes fail on the dead handles; the
    // destructor must still tear down cleanly.
  }
  rdb::Database db2;
  rdb::DurabilityOptions opts2;
  ASSERT_TRUE(db2.Open(dir.path(), opts2).ok());
  // Bounded loss: everything synced survives; only the unsynced window
  // (the 5 trailing acked units) may be gone — and nothing partial appears.
  int64_t n = WriterCount(&db2, "SELECT COUNT(*) FROM t");
  EXPECT_GE(n, 10);
  EXPECT_LE(n, 15);
  EXPECT_EQ(WriterCount(&db2, "SELECT COUNT(*) FROM t WHERE id < 10"), 10);
  // The recovered prefix is a clean unit boundary: ids are contiguous.
  EXPECT_EQ(WriterCount(&db2, "SELECT MAX(id) FROM t"), n - 1);
  EXPECT_EQ(WriterCount(&db2, "SELECT SUM(id) FROM t"), n * (n - 1) / 2);
}

TEST(MvccTest, CommitSyncLosesNothingOnPowerLoss) {
  TempDir dir;
  rdb::FaultVfs fault(rdb::Vfs::Default());
  {
    rdb::Database db;
    rdb::DurabilityOptions opts;
    opts.sync_mode = rdb::SyncMode::kCommit;
    opts.vfs = &fault;
    ASSERT_TRUE(db.Open(dir.path(), opts).ok());
    Must(&db, "CREATE TABLE t (id INTEGER)");
    for (int i = 0; i < 15; ++i) {
      Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
    }
    fault.SimulatePowerLoss();
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir.path()).ok());
  // kCommit: every acknowledged unit was fsynced before the ack.
  EXPECT_EQ(WriterCount(&db2, "SELECT COUNT(*) FROM t"), 15);
}

TEST(MvccTest, BatchedFlusherEventuallySyncsWithoutCheckpoints) {
  TempDir dir;
  {
    rdb::Database db;
    rdb::DurabilityOptions opts;
    opts.sync_mode = rdb::SyncMode::kBatched;
    opts.group_commit_window_us = 500;  // aggressive window for the test
    ASSERT_TRUE(db.Open(dir.path(), opts).ok());
    Must(&db, "CREATE TABLE t (id INTEGER)");
    for (int i = 0; i < 20; ++i) {
      Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
    }
    // Give the background flusher a few windows to drain the tail, then
    // exit without a checkpoint: recovery must replay from the synced WAL.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir.path()).ok());
  EXPECT_EQ(WriterCount(&db2, "SELECT COUNT(*) FROM t"), 20);
}

// ---------------------------------------------------------------------------
// concurrency stress (primary TSan target)

TEST(MvccStressTest, ConcurrentReadersSeeOnlyCommitBoundaries) {
  rdb::Database db;
  Must(&db, "CREATE TABLE t (id INTEGER, v INTEGER)");
  // Invariant: the writer only ever commits rows in pairs, so every epoch
  // exposes an even row count and SUM(v) == 0 (each pair is +x and -x).
  constexpr int kWriterIters = 300;
  constexpr int kReaders = 4;

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&db, &done, &failures] {
      auto rs = db.OpenReaderSession();
      if (!rs.ok()) {
        ++failures;
        return;
      }
      while (!done.load(std::memory_order_acquire)) {
        auto count = (*rs)->ExecuteQuery("SELECT COUNT(*) FROM t");
        if (!count.ok() || count->rows[0][0].AsInt() % 2 != 0) {
          ++failures;
          break;
        }
        auto sum = (*rs)->ExecuteQuery("SELECT SUM(v) FROM t");
        int64_t s = 0;
        if (sum.ok() && !sum->rows.empty() && !sum->rows[0][0].is_null()) {
          s = sum->rows[0][0].AsInt();
        }
        if (!sum.ok() || s != 0) {
          ++failures;
          break;
        }
        // Repeatable read inside one explicit pin.
        (*rs)->PinSnapshot();
        auto c1 = (*rs)->ExecuteQuery("SELECT COUNT(*) FROM t");
        auto c2 = (*rs)->ExecuteQuery("SELECT COUNT(*) FROM t");
        (*rs)->Unpin();
        if (!c1.ok() || !c2.ok() ||
            c1->rows[0][0].AsInt() != c2->rows[0][0].AsInt()) {
          ++failures;
          break;
        }
      }
    });
  }

  for (int i = 0; i < kWriterIters; ++i) {
    Must(&db, "BEGIN");
    Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                  std::to_string(i + 1) + ")");
    Must(&db, "INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                  std::to_string(-(i + 1)) + ")");
    Must(&db, "COMMIT");
    if (i % 3 == 2) {
      // Delete one full pair inside a transaction: still even at the commit.
      Must(&db, "BEGIN");
      Must(&db, "DELETE FROM t WHERE id = " + std::to_string(i - 2));
      Must(&db, "COMMIT");
    }
    if (i % 50 == 25) {
      Must(&db, "UPDATE t SET v = -v WHERE id >= " + std::to_string(i - 10));
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(WriterCount(&db, "SELECT SUM(v) FROM t"), 0);
}

TEST(MvccStressTest, ConcurrentReadersWithBackgroundCheckpoint) {
  TempDir dir;
  rdb::Database db;
  rdb::DurabilityOptions opts;
  opts.sync_mode = rdb::SyncMode::kBatched;
  opts.group_commit_window_us = 1000;
  ASSERT_TRUE(db.Open(dir.path(), opts).ok());
  Must(&db, "CREATE TABLE t (id INTEGER)");

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&db, &done, &failures] {
      auto rs = db.OpenReaderSession();
      if (!rs.ok()) {
        ++failures;
        return;
      }
      int64_t prev = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto count = (*rs)->ExecuteQuery("SELECT COUNT(*) FROM t");
        if (!count.ok()) {
          ++failures;
          break;
        }
        int64_t n = count->rows[0][0].AsInt();
        // Insert-only workload: counts are monotone across statements.
        if (n < prev) {
          ++failures;
          break;
        }
        prev = n;
      }
    });
  }

  Status bg = Status::OK();
  for (int i = 0; i < 200 && bg.ok(); ++i) {
    Status s = db.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")");
    if (!s.ok()) bg = s;
    if (i == 60 || i == 140) {
      // The first checkpoint may still be serializing; wait it out before
      // launching the next (only one runs at a time).
      bg = db.CheckpointWait();
      if (bg.ok()) bg = db.CheckpointBackground();
    }
  }
  Status wait = db.CheckpointWait();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_TRUE(bg.ok()) << bg;
  EXPECT_TRUE(wait.ok()) << wait;
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(WriterCount(&db, "SELECT COUNT(*) FROM t"), 200);
}

}  // namespace
}  // namespace xupd
