#include "shred/edge.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/str_util.h"

namespace xupd::shred {

using rdb::Value;

Status EdgeStore::CreateSchema() {
  XUPD_RETURN_IF_ERROR(db_->Execute(
      std::string("CREATE TABLE ") + kTableName +
      " (source INTEGER, ordinal INTEGER, kind VARCHAR, name VARCHAR, "
      "value VARCHAR, target INTEGER)"));
  XUPD_RETURN_IF_ERROR(db_->Execute(std::string("CREATE INDEX idx_edge_source ON ") +
                                    kTableName + " (source)"));
  XUPD_RETURN_IF_ERROR(db_->Execute(std::string("CREATE INDEX idx_edge_target ON ") +
                                    kTableName + " (target)"));
  return Status::OK();
}

Status EdgeStore::LoadElement(const xml::Element& element, int64_t parent_id,
                              int64_t ordinal, int64_t* out_id) {
  rdb::Table* table = db_->FindTable(kTableName);
  if (table == nullptr) {
    return Status::Internal("edge table missing; call CreateSchema first");
  }
  int64_t id = db_->AllocateId();
  *out_id = id;
  // The element edge itself.
  XUPD_RETURN_IF_ERROR(db_->InsertDirect(
      table, {parent_id == 0 ? Value::Null() : Value::Int(parent_id),
              Value::Int(ordinal), Value::Str("elem"),
              Value::Str(element.name()), Value::Null(), Value::Int(id)}));
  int64_t pos = 0;
  for (const xml::Attribute& a : element.attributes()) {
    XUPD_RETURN_IF_ERROR(db_->InsertDirect(
        table, {Value::Int(id), Value::Int(pos++), Value::Str("attr"),
                Value::Str(a.name), Value::Str(a.value), Value::Null()}));
  }
  for (const xml::RefList& r : element.ref_lists()) {
    for (const std::string& target : r.targets) {
      XUPD_RETURN_IF_ERROR(db_->InsertDirect(
          table, {Value::Int(id), Value::Int(pos++), Value::Str("ref"),
                  Value::Str(r.name), Value::Str(target), Value::Null()}));
    }
  }
  for (const auto& child : element.children()) {
    if (child->is_text()) {
      XUPD_RETURN_IF_ERROR(db_->InsertDirect(
          table,
          {Value::Int(id), Value::Int(pos++), Value::Str("text"),
           Value::Null(),
           Value::Str(static_cast<const xml::Text*>(child.get())->value()),
           Value::Null()}));
    } else {
      int64_t child_id = 0;
      XUPD_RETURN_IF_ERROR(
          LoadElement(*static_cast<const xml::Element*>(child.get()), id,
                      pos++, &child_id));
    }
  }
  return Status::OK();
}

Result<int64_t> EdgeStore::Load(const xml::Document& doc) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root");
  }
  int64_t root_id = 0;
  XUPD_RETURN_IF_ERROR(LoadElement(*doc.root(), 0, 0, &root_id));
  return root_id;
}

Result<std::unique_ptr<xml::Document>> EdgeStore::Reconstruct() {
  auto rows = db_->ExecuteQuery(
      std::string("SELECT source, ordinal, kind, name, value, target FROM ") +
      kTableName);
  if (!rows.ok()) return rows.status();

  struct EdgeRow {
    int64_t source = 0;
    int64_t ordinal = 0;
    std::string kind, name, value;
    int64_t target = 0;
  };
  // Group child edges by source element id.
  std::map<int64_t, std::vector<EdgeRow>> children;
  EdgeRow root_edge;
  bool have_root = false;
  for (const rdb::Row& row : rows->rows) {
    EdgeRow e;
    e.source = row[0].is_null() ? 0 : row[0].AsInt();
    e.ordinal = row[1].AsInt();
    e.kind = row[2].ToString();
    e.name = row[3].is_null() ? "" : row[3].ToString();
    e.value = row[4].is_null() ? "" : row[4].ToString();
    e.target = row[5].is_null() ? 0 : row[5].AsInt();
    if (e.source == 0 && e.kind == "elem") {
      root_edge = e;
      have_root = true;
    } else {
      children[e.source].push_back(std::move(e));
    }
  }
  if (!have_root) return Status::NotFound("no root edge");
  for (auto& [id, list] : children) {
    std::sort(list.begin(), list.end(),
              [](const EdgeRow& a, const EdgeRow& b) {
                return a.ordinal < b.ordinal;
              });
  }

  std::set<std::string> ref_names;
  std::function<Result<std::unique_ptr<xml::Element>>(const EdgeRow&)> build =
      [&](const EdgeRow& edge) -> Result<std::unique_ptr<xml::Element>> {
    auto elem = std::make_unique<xml::Element>(edge.name);
    auto it = children.find(edge.target);
    if (it != children.end()) {
      for (const EdgeRow& child : it->second) {
        if (child.kind == "attr") {
          elem->SetAttribute(child.name, child.value);
        } else if (child.kind == "ref") {
          elem->AppendRef(child.name, child.value);
          ref_names.insert(child.name);
        } else if (child.kind == "text") {
          elem->AppendText(child.value);
        } else if (child.kind == "elem") {
          auto sub = build(child);
          if (!sub.ok()) return sub.status();
          elem->AppendChild(std::move(sub).value());
        } else {
          return Status::Internal("unknown edge kind '" + child.kind + "'");
        }
      }
    }
    return elem;
  };
  auto root = build(root_edge);
  if (!root.ok()) return root.status();
  auto doc = std::make_unique<xml::Document>(std::move(root).value());
  for (const std::string& name : ref_names) {
    doc->DeclareRefAttribute(name);
  }
  return doc;
}

size_t EdgeStore::EdgeCount() const {
  const rdb::Table* t = db_->FindTable(kTableName);
  return t == nullptr ? 0 : t->live_count();
}

Result<std::vector<int64_t>> EdgeStore::FindElementsByText(
    const std::string& name, const std::string& value) {
  // Two instances of the edge relation: one for the element edge, one for
  // its text edge — the join fragmentation the paper criticizes.
  auto rows = db_->ExecuteQuery(
      std::string("SELECT e.target FROM ") + kTableName + " e, " + kTableName +
      " t WHERE e.kind = 'elem' AND e.name = " + SqlQuote(name) +
      " AND t.kind = 'text' AND t.source = e.target AND t.value = " +
      SqlQuote(value));
  if (!rows.ok()) return rows.status();
  std::vector<int64_t> out;
  for (const rdb::Row& row : rows->rows) out.push_back(row[0].AsInt());
  return out;
}

}  // namespace xupd::shred
