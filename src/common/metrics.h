// Engine-wide observability primitives: a monotonic clock, log-bucketed
// latency histograms, a registry of named counters/gauges/histograms, and a
// fixed-size ring buffer of structured trace events.
//
// The paper's argument is experimental — figs. 6-11 attribute update cost
// to strategy choices — so the engine must be able to say *where time went*,
// not just how often things happened (that is rdb/stats.h's job). Everything
// here is built to be always-on: recording a histogram sample is one clock
// read plus one bucket increment, and recording a trace event is a struct
// copy into a preallocated ring. Nothing allocates on the hot path.
#ifndef XUPD_COMMON_METRICS_H_
#define XUPD_COMMON_METRICS_H_

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xupd {

/// Nanoseconds on the monotonic clock. All histogram samples and event
/// timestamps use this time base; it is not wall time.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Point-in-time summary of a Histogram. Percentiles are interpolated
/// within the matching bucket and clamped to the observed [min, max].
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Log-linear latency histogram (HdrHistogram-style): values below 16 get
/// exact unit buckets; above that, each power-of-two octave is split into
/// 16 linear sub-buckets, so relative error is bounded at ~6% across the
/// full uint64 range. Record() is one std::bit_width plus one increment.
///
/// Samples are dimensionless; engine call sites record nanoseconds.
class Histogram {
 public:
  static constexpr int kSubBits = 4;                       // 16 sub-buckets
  static constexpr int kSubCount = 1 << kSubBits;          // per octave
  static constexpr int kFirstOctave = kSubBits;            // values >= 16
  static constexpr int kLastOctave = 63;
  static constexpr int kBucketCount =
      kSubCount + (kLastOctave - kFirstOctave + 1) * kSubCount;

  /// Bucket index for a value. Deterministic and exposed for tests:
  /// BucketIndex(v) == v for v < 16; BucketIndex(32) starts a new octave.
  static int BucketIndex(uint64_t value) {
    if (value < kSubCount) return static_cast<int>(value);
    const int octave = std::bit_width(value) - 1;  // >= kFirstOctave
    const int shift = octave - kSubBits;
    const int sub = static_cast<int>((value >> shift) - kSubCount);
    return kSubCount + (octave - kFirstOctave) * kSubCount + sub;
  }

  /// Smallest value mapping to bucket `index`.
  static uint64_t BucketLowerBound(int index) {
    if (index < kSubCount) return static_cast<uint64_t>(index);
    const int rel = index - kSubCount;
    const int octave = rel / kSubCount + kFirstOctave;
    const int sub = rel % kSubCount;
    const int shift = octave - kSubBits;
    return static_cast<uint64_t>(kSubCount + sub) << shift;
  }

  /// Width of bucket `index` (1 for the exact range).
  static uint64_t BucketWidth(int index) {
    if (index < kSubCount) return 1;
    const int octave = (index - kSubCount) / kSubCount + kFirstOctave;
    return uint64_t{1} << (octave - kSubBits);
  }

  void Record(uint64_t value) {
    ++buckets_[static_cast<size_t>(BucketIndex(value))];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ > 0 ? min_ : 0; }
  uint64_t max() const { return max_; }

  /// Value at percentile `p` in [0, 100]: linear interpolation inside the
  /// bucket holding the p-th sample, clamped to [min, max] so single-sample
  /// and narrow distributions report exact observed values. Returns 0 when
  /// empty.
  double Percentile(double p) const;

  /// Adds every bucket (and count/sum/min/max) of `other` into this.
  void Merge(const Histogram& other);

  void Reset() { *this = Histogram{}; }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    s.count = count_;
    s.sum = sum_;
    s.min = min();
    s.max = max_;
    s.p50 = Percentile(50);
    s.p95 = Percentile(95);
    s.p99 = Percentile(99);
    return s;
  }

 private:
  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// One structured trace event: a timestamped span with two numeric payload
/// slots whose meaning depends on the kind (see the kind comments).
/// `detail` must point at a string literal or other static storage — the
/// ring never copies it, which keeps Record() allocation-free.
struct TraceEvent {
  enum class Kind : uint8_t {
    kStatement,   ///< one SQL statement; a = sql::Statement::Kind.
    kTxn,         ///< outermost BEGIN..COMMIT/ROLLBACK; a = 1 if committed.
    kWalUnit,     ///< one WAL commit unit; a = records, b = bytes.
    kFsync,       ///< one WAL fsync.
    kCheckpoint,  ///< snapshot + WAL truncation (snapshot.write histogram
                  ///< holds the write alone).
    kRecovery,    ///< startup replay; a = records replayed.
    kScrub,       ///< integrity scrub; a = violations found.
    kEngineOp,    ///< one engine/store.cc operation; a = SQL exec ns,
                  ///< b = trigger-cascade ns; detail = op name.
  };
  Kind kind = Kind::kStatement;
  uint64_t start_ns = 0;     ///< MonotonicNanos() at span start.
  uint64_t duration_ns = 0;  ///< span length.
  uint64_t a = 0;            ///< kind-specific payload.
  uint64_t b = 0;            ///< kind-specific payload.
  const char* detail = nullptr;  ///< static string or nullptr.
};

const char* ToString(TraceEvent::Kind kind);

/// Fixed-capacity ring of TraceEvents. When full, the oldest event is
/// overwritten and `dropped()` counts it; the engine can therefore trace
/// forever with bounded memory and no branch-heavy bookkeeping.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 1024) : ring_(capacity) {}

  void Record(const TraceEvent& e) {
    if (ring_.empty()) return;
    if (size_ == ring_.size()) {
      ring_[head_] = e;
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
    } else {
      ring_[(head_ + size_) % ring_.size()] = e;
      ++size_;
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  uint64_t dropped() const { return dropped_; }
  void Clear() { size_ = head_ = 0; dropped_ = 0; }

  /// Events oldest-first.
  std::vector<TraceEvent> Events() const;

  /// One JSON object per event, oldest-first.
  std::vector<std::string> ToJsonLines() const;

  /// The whole ring as a JSON array.
  std::string DumpJson() const;

 private:
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

/// Named counters, gauges, and histograms. Counter()/Gauge()/GetHistogram()
/// are get-or-create and return pointers that stay valid for the registry's
/// lifetime, so call sites resolve names once and then touch plain memory.
/// Iteration and export are name-sorted for deterministic output.
class MetricsRegistry {
 public:
  /// Monotonically increasing counter (caller increments through the
  /// returned pointer).
  uint64_t* Counter(std::string_view name);

  /// Point-in-time gauge (caller assigns through the returned pointer).
  int64_t* Gauge(std::string_view name);

  Histogram* GetHistogram(std::string_view name);

  /// Existing histogram or nullptr (does not create).
  const Histogram* FindHistogram(std::string_view name) const;

  template <typename Fn>  // fn(const std::string&, uint64_t)
  void ForEachCounter(Fn&& fn) const {
    for (const auto& [name, value] : counters_) fn(name, value);
  }

  template <typename Fn>  // fn(const std::string&, int64_t)
  void ForEachGauge(Fn&& fn) const {
    for (const auto& [name, value] : gauges_) fn(name, value);
  }

  template <typename Fn>  // fn(const std::string&, const Histogram&)
  void ForEachHistogram(Fn&& fn) const {
    for (const auto& [name, hist] : histograms_) fn(name, *hist);
  }

  /// "name value" per line; histograms expand to name.count / name.p50 /
  /// name.p95 / name.p99 / name.max / name.sum.
  std::string ExportText() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{snapshot...}}}.
  std::string ExportJson() const;

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, int64_t, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace xupd

#endif  // XUPD_COMMON_METRICS_H_
