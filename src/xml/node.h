// The XML data model of "Updating XML" §3.1: a node-labeled tree with
// references. An *object* is one of:
//   - an element: name, set of attributes, set of named IDREFS lists, ordered
//     list of child elements / PCDATA;
//   - an attribute: (name, string value), unordered w.r.t. one another;
//   - an IDREFS list: a *named ordered list* of ID references (an IDREF is a
//     singleton list);
//   - PCDATA: a string value inside an element.
#ifndef XUPD_XML_NODE_H_
#define XUPD_XML_NODE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace xupd::xml {

class Element;

enum class NodeKind { kElement, kText };

/// An attribute: name + string value. Attributes are unordered with respect
/// to one another (we keep insertion order for readable serialization only).
struct Attribute {
  std::string name;
  std::string value;

  bool operator==(const Attribute&) const = default;
};

/// A named ordered list of ID references (IDREFS). Per the paper, an IDREF is
/// treated as a singleton IDREFS list. Entry order is meaningful.
struct RefList {
  std::string name;
  std::vector<std::string> targets;

  bool operator==(const RefList&) const = default;
};

/// Base of the ordered child list: either an Element or a Text (PCDATA) node.
class Node {
 public:
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  /// Owning parent element; null for a detached node or the document root.
  Element* parent() const { return parent_; }

  /// Deep copy with no parent.
  virtual std::unique_ptr<Node> CloneNode() const = 0;

 protected:
  explicit Node(NodeKind kind) : kind_(kind) {}

 private:
  friend class Element;
  NodeKind kind_;
  Element* parent_ = nullptr;
};

/// PCDATA content.
class Text : public Node {
 public:
  explicit Text(std::string value)
      : Node(NodeKind::kText), value_(std::move(value)) {}

  const std::string& value() const { return value_; }
  void set_value(std::string v) { value_ = std::move(v); }

  std::unique_ptr<Node> CloneNode() const override {
    return std::make_unique<Text>(value_);
  }

 private:
  std::string value_;
};

/// An element node. Mutators implement the checks required by the §3.2
/// primitives (e.g. inserting an attribute that already exists fails).
class Element : public Node {
 public:
  explicit Element(std::string name)
      : Node(NodeKind::kElement), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Attributes -----------------------------------------------------------

  const std::vector<Attribute>& attributes() const { return attrs_; }

  /// Null if absent.
  const Attribute* FindAttribute(std::string_view name) const;

  /// Fails with AlreadyExists if an attribute of this name is present
  /// (paper §3.2, Insert semantics).
  Status InsertAttribute(std::string name, std::string value);

  /// Unconditionally sets (used by parsers/generators, not by update ops).
  void SetAttribute(std::string name, std::string value);

  /// Fails with NotFound if absent.
  Status RemoveAttribute(std::string_view name);

  /// Renames attribute `old_name` to `new_name`; fails if the source is
  /// missing or the destination already exists.
  Status RenameAttribute(std::string_view old_name, std::string new_name);

  // --- IDREFS lists ---------------------------------------------------------

  const std::vector<RefList>& ref_lists() const { return refs_; }
  const RefList* FindRefList(std::string_view name) const;
  RefList* FindRefList(std::string_view name);

  /// Appends `target` to the IDREFS list `name`, creating the list if absent
  /// (paper: inserting a reference with the name of an existing IDREFS adds
  /// an extra entry).
  void AppendRef(std::string name, std::string target);

  /// Inserts `target` at `index` within list `name` (0 = front).
  Status InsertRefAt(std::string_view name, size_t index, std::string target);

  /// Removes the single entry at `index`; the rest of the list is preserved.
  /// An emptied list is removed entirely.
  Status RemoveRefAt(std::string_view name, size_t index);

  /// Renames the *entire* IDREFS list (individual IDREFs cannot be renamed).
  Status RenameRefList(std::string_view old_name, std::string new_name);

  Status ReplaceRefAt(std::string_view name, size_t index, std::string target);

  // --- Children (ordered list of Element / Text) -----------------------------

  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  size_t child_count() const { return children_.size(); }
  Node* child(size_t i) const { return children_[i].get(); }

  /// Index of `node` in the child list, or npos.
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t IndexOfChild(const Node* node) const;

  /// Appends (ordered model: all non-attribute insertions go at the end).
  Element* AppendChild(std::unique_ptr<Node> node);

  /// Inserts at position `index` (<= child_count()).
  Status InsertChildAt(size_t index, std::unique_ptr<Node> node);

  /// Detaches and returns the child at `index`.
  Result<std::unique_ptr<Node>> RemoveChildAt(size_t index);

  /// Convenience: appends <name>text</name>.
  Element* AppendSimpleChild(std::string name, std::string text);

  /// Appends a Text child.
  void AppendText(std::string text);

  /// First child element with this name, or null.
  Element* FindChildElement(std::string_view name) const;

  /// Concatenated PCDATA of direct Text children.
  std::string TextContent() const;

  /// Deep copy (children, attributes, reflists); no parent.
  std::unique_ptr<Element> Clone() const;
  std::unique_ptr<Node> CloneNode() const override;

  /// Number of element nodes in this subtree (including this one).
  size_t SubtreeElementCount() const;

 private:
  std::string name_;
  std::vector<Attribute> attrs_;
  std::vector<RefList> refs_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// Deep structural equality in the *ordered* model: names, attribute sets
/// (order-insensitive), reflists (name-insensitive order, entry order
/// sensitive) and child lists (order sensitive) must match.
bool DeepEqual(const Node& a, const Node& b);

/// Deep equality in the *unordered* model: like DeepEqual but child lists are
/// compared as multisets (used to compare against the relational store, which
/// does not preserve document order).
bool DeepEqualUnordered(const Node& a, const Node& b);

}  // namespace xupd::xml

#endif  // XUPD_XML_NODE_H_
