// Parser for path expressions and predicates. Exposes entry points that
// consume from a shared Lexer so the XQuery-update parser can embed paths.
#ifndef XUPD_XPATH_PARSER_H_
#define XUPD_XPATH_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xpath/ast.h"
#include "xpath/lexer.h"

namespace xupd::xpath {

/// Parses a complete path expression from `lexer` (stops at the first token
/// that cannot extend the path).
Result<PathExpr> ParsePath(Lexer* lexer);

/// Parses a boolean predicate expression (the contents of [...] or a WHERE
/// condition) from `lexer`.
Result<Predicate> ParsePredicate(Lexer* lexer);

/// Parses a standalone path string; fails on trailing input.
Result<PathExpr> ParsePathString(std::string_view text);

/// Parses a standalone predicate string; fails on trailing input.
Result<Predicate> ParsePredicateString(std::string_view text);

}  // namespace xupd::xpath

#endif  // XUPD_XPATH_PARSER_H_
