#include "rdb/sql_executor.h"

#include <algorithm>

#include "common/str_util.h"
#include "rdb/sql_parser.h"

namespace xupd::rdb {

using sql::Expr;

// ---------------------------------------------------------------------------
// Relation helpers

size_t Executor::Relation::NumColumns() const {
  return table != nullptr ? table->schema().column_count()
                          : mat->columns.size();
}

int Executor::Relation::ColumnIndex(std::string_view name) const {
  return table != nullptr ? table->schema().ColumnIndex(name)
                          : mat->ColumnIndex(name);
}

std::string Executor::Relation::ColumnName(size_t i) const {
  return table != nullptr ? table->schema().columns()[i].name
                          : mat->columns[i];
}

// ---------------------------------------------------------------------------
// Entry point

Result<ResultSet> Executor::Run(const sql::Statement& stmt) {
  // Both hooks see every statement execution, including trigger-body and
  // nested statements: the failpoint can land mid-cascade, and the DDL
  // barrier cannot be bypassed from inside a trigger.
  XUPD_RETURN_IF_ERROR(db_->ConsumeFailpoint());
  XUPD_RETURN_IF_ERROR(db_->CheckDdlBarrier(stmt));
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
      return RunSelect(stmt.select);
    case sql::Statement::Kind::kCreateTable:
      return RunCreateTable(stmt.create_table);
    case sql::Statement::Kind::kCreateIndex:
      return RunCreateIndex(stmt.create_index);
    case sql::Statement::Kind::kCreateTrigger:
      return RunCreateTrigger(stmt.create_trigger);
    case sql::Statement::Kind::kDrop:
      return RunDrop(stmt.drop);
    case sql::Statement::Kind::kInsert:
      return RunInsert(stmt.insert);
    case sql::Statement::Kind::kDelete:
      return RunDelete(stmt.del);
    case sql::Statement::Kind::kUpdate:
      return RunUpdate(stmt.update);
    case sql::Statement::Kind::kBegin:
      XUPD_RETURN_IF_ERROR(db_->Begin());
      return ResultSet{};
    case sql::Statement::Kind::kCommit:
      XUPD_RETURN_IF_ERROR(db_->Commit());
      return ResultSet{};
    case sql::Statement::Kind::kRollback:
      XUPD_RETURN_IF_ERROR(db_->Rollback());
      return ResultSet{};
  }
  return Status::Internal("unknown statement kind");
}

// ---------------------------------------------------------------------------
// DDL

Result<ResultSet> Executor::RunCreateTable(const sql::CreateTableStmt& stmt) {
  XUPD_ASSIGN_OR_RETURN(Table * ignored,
                        db_->CreateTableDirect(TableSchema(stmt.name, stmt.columns)));
  (void)ignored;
  return ResultSet{};
}

Result<ResultSet> Executor::RunCreateIndex(const sql::CreateIndexStmt& stmt) {
  Table* table = db_->FindTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  int col = table->schema().ColumnIndex(stmt.column);
  if (col < 0) {
    return Status::NotFound("column '" + stmt.column + "' not found");
  }
  XUPD_RETURN_IF_ERROR(table->CreateIndex(stmt.name, col));
  return ResultSet{};
}

Result<ResultSet> Executor::RunCreateTrigger(const sql::CreateTriggerStmt& stmt) {
  if (db_->FindTable(stmt.table) == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  for (const auto& t : db_->triggers_) {
    if (EqualsIgnoreCase(t.name, stmt.name)) {
      return Status::AlreadyExists("trigger '" + stmt.name + "' already exists");
    }
  }
  Database::TriggerDef def;
  def.name = stmt.name;
  def.table = stmt.table;
  def.granularity = stmt.granularity;
  def.body = stmt.body;
  db_->triggers_.push_back(std::move(def));
  return ResultSet{};
}

Result<ResultSet> Executor::RunDrop(const sql::DropStmt& stmt) {
  switch (stmt.what) {
    case sql::DropStmt::What::kTable: {
      auto it = db_->tables_.find(stmt.name);
      if (it == db_->tables_.end()) {
        return Status::NotFound("table '" + stmt.name + "' not found");
      }
      db_->tables_.erase(it);
      auto& trigs = db_->triggers_;
      trigs.erase(std::remove_if(trigs.begin(), trigs.end(),
                                 [&](const Database::TriggerDef& t) {
                                   return EqualsIgnoreCase(t.table, stmt.name);
                                 }),
                  trigs.end());
      return ResultSet{};
    }
    case sql::DropStmt::What::kIndex: {
      if (!stmt.table.empty()) {
        Table* table = db_->FindTable(stmt.table);
        if (table == nullptr) {
          return Status::NotFound("table '" + stmt.table + "' not found");
        }
        XUPD_RETURN_IF_ERROR(table->DropIndex(stmt.name));
        return ResultSet{};
      }
      for (auto& [name, table] : db_->tables_) {
        if (table->FindIndexByName(stmt.name) != nullptr) {
          XUPD_RETURN_IF_ERROR(table->DropIndex(stmt.name));
          return ResultSet{};
        }
      }
      return Status::NotFound("index '" + stmt.name + "' not found");
    }
    case sql::DropStmt::What::kTrigger: {
      auto& trigs = db_->triggers_;
      size_t before = trigs.size();
      trigs.erase(std::remove_if(trigs.begin(), trigs.end(),
                                 [&](const Database::TriggerDef& t) {
                                   return EqualsIgnoreCase(t.name, stmt.name);
                                 }),
                  trigs.end());
      if (trigs.size() == before) {
        return Status::NotFound("trigger '" + stmt.name + "' not found");
      }
      return ResultSet{};
    }
  }
  return Status::Internal("unknown drop kind");
}

// ---------------------------------------------------------------------------
// Expression evaluation

namespace {

Result<Value> CoerceValue(Value v, ColumnType type) {
  if (v.is_null()) return v;
  if (type == ColumnType::kInteger) {
    if (v.type() == ValueType::kInt) return v;
    int64_t parsed;
    if (ParseInt64(v.AsString(), &parsed)) return Value::Int(parsed);
    return Status::InvalidArgument("cannot coerce '" + v.AsString() +
                                   "' to INTEGER");
  }
  if (v.type() == ValueType::kString) return v;
  return Value::Str(v.ToString());
}

// Truthiness of a value with NULL == not-true.
bool Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt) return v.AsInt() != 0;
  return !v.AsString().empty();
}

}  // namespace

Result<std::pair<size_t, size_t>> Executor::ResolveColumn(
    const std::vector<Relation>& relations, size_t bound,
    const std::string& table, const std::string& column) const {
  if (!table.empty()) {
    for (size_t i = 0; i < bound; ++i) {
      if (EqualsIgnoreCase(relations[i].alias, table)) {
        int col = relations[i].ColumnIndex(column);
        if (col < 0) {
          return Status::NotFound("column '" + table + "." + column +
                                  "' not found");
        }
        return std::make_pair(i, static_cast<size_t>(col));
      }
    }
    return Status::NotFound("unknown table alias '" + table + "'");
  }
  int found_rel = -1;
  int found_col = -1;
  for (size_t i = 0; i < bound; ++i) {
    int col = relations[i].ColumnIndex(column);
    if (col >= 0) {
      if (found_rel >= 0) {
        return Status::InvalidArgument("ambiguous column '" + column + "'");
      }
      found_rel = static_cast<int>(i);
      found_col = col;
    }
  }
  if (found_rel < 0) {
    return Status::NotFound("column '" + column + "' not found");
  }
  return std::make_pair(static_cast<size_t>(found_rel),
                        static_cast<size_t>(found_col));
}

const std::unordered_set<Value, ValueHash>* Executor::SubquerySet(
    const sql::Expr& e) {
  auto it = subquery_sets_.find(&e);
  if (it != subquery_sets_.end()) return it->second.get();
  auto result = RunSelect(*e.subquery);
  if (!result.ok()) return nullptr;
  auto set = std::make_unique<std::unordered_set<Value, ValueHash>>();
  for (const Row& row : result->rows) {
    if (!row.empty() && !row[0].is_null()) set->insert(row[0]);
  }
  auto* raw = set.get();
  subquery_sets_.emplace(&e, std::move(set));
  return raw;
}

Result<Value> Executor::Eval(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kParam: {
      if (params_ == nullptr ||
          expr.param_index >= static_cast<int>(params_->size()) ||
          expr.param_index < 0) {
        return Status::InvalidArgument(
            "parameter ?" + std::to_string(expr.param_index + 1) +
            " is not bound");
      }
      return (*params_)[static_cast<size_t>(expr.param_index)];
    }
    case Expr::Kind::kColumn: {
      if (ctx.relations == nullptr) {
        return Status::InvalidArgument("column reference outside a query");
      }
      auto rc = ResolveColumn(*ctx.relations, ctx.bound, expr.table,
                              expr.column);
      if (!rc.ok()) return rc.status();
      const Row* row = (*ctx.row)[rc.value().first];
      return (*row)[rc.value().second];
    }
    case Expr::Kind::kOldColumn: {
      if (ctx.old_row == nullptr || ctx.old_schema == nullptr) {
        return Status::InvalidArgument("OLD.* outside a row trigger");
      }
      int col = ctx.old_schema->ColumnIndex(expr.column);
      if (col < 0) {
        return Status::NotFound("OLD." + expr.column + " not found");
      }
      return (*ctx.old_row)[static_cast<size_t>(col)];
    }
    case Expr::Kind::kUnary: {
      XUPD_ASSIGN_OR_RETURN(Value v, Eval(expr.children[0], ctx));
      if (expr.op == Expr::Op::kNot) {
        if (v.is_null()) return Value::Null();
        return Value::Int(Truthy(v) ? 0 : 1);
      }
      if (expr.op == Expr::Op::kNeg) {
        if (v.is_null()) return Value::Null();
        XUPD_ASSIGN_OR_RETURN(Value i, CoerceValue(v, ColumnType::kInteger));
        return Value::Int(-i.AsInt());
      }
      return Status::Internal("unknown unary op");
    }
    case Expr::Kind::kBinary: {
      if (expr.op == Expr::Op::kAnd) {
        XUPD_ASSIGN_OR_RETURN(Value l, Eval(expr.children[0], ctx));
        if (!l.is_null() && !Truthy(l)) return Value::Int(0);
        XUPD_ASSIGN_OR_RETURN(Value r, Eval(expr.children[1], ctx));
        if (!r.is_null() && !Truthy(r)) return Value::Int(0);
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Int(1);
      }
      if (expr.op == Expr::Op::kOr) {
        XUPD_ASSIGN_OR_RETURN(Value l, Eval(expr.children[0], ctx));
        if (!l.is_null() && Truthy(l)) return Value::Int(1);
        XUPD_ASSIGN_OR_RETURN(Value r, Eval(expr.children[1], ctx));
        if (!r.is_null() && Truthy(r)) return Value::Int(1);
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Int(0);
      }
      XUPD_ASSIGN_OR_RETURN(Value l, Eval(expr.children[0], ctx));
      XUPD_ASSIGN_OR_RETURN(Value r, Eval(expr.children[1], ctx));
      switch (expr.op) {
        case Expr::Op::kAdd:
        case Expr::Op::kSub:
        case Expr::Op::kMul:
        case Expr::Op::kDiv: {
          if (l.is_null() || r.is_null()) return Value::Null();
          XUPD_ASSIGN_OR_RETURN(Value li, CoerceValue(l, ColumnType::kInteger));
          XUPD_ASSIGN_OR_RETURN(Value ri, CoerceValue(r, ColumnType::kInteger));
          int64_t a = li.AsInt(), b = ri.AsInt();
          switch (expr.op) {
            case Expr::Op::kAdd:
              return Value::Int(a + b);
            case Expr::Op::kSub:
              return Value::Int(a - b);
            case Expr::Op::kMul:
              return Value::Int(a * b);
            default:
              if (b == 0) return Status::InvalidArgument("division by zero");
              return Value::Int(a / b);
          }
        }
        default: {
          if (l.is_null() || r.is_null()) return Value::Null();
          int cmp = l.Compare(r);
          bool result = false;
          switch (expr.op) {
            case Expr::Op::kEq:
              result = cmp == 0;
              break;
            case Expr::Op::kNe:
              result = cmp != 0;
              break;
            case Expr::Op::kLt:
              result = cmp < 0;
              break;
            case Expr::Op::kLe:
              result = cmp <= 0;
              break;
            case Expr::Op::kGt:
              result = cmp > 0;
              break;
            case Expr::Op::kGe:
              result = cmp >= 0;
              break;
            default:
              return Status::Internal("unknown binary op");
          }
          return Value::Int(result ? 1 : 0);
        }
      }
    }
    case Expr::Kind::kIsNull: {
      XUPD_ASSIGN_OR_RETURN(Value v, Eval(expr.children[0], ctx));
      bool is_null = v.is_null();
      return Value::Int((is_null != expr.negated) ? 1 : 0);
    }
    case Expr::Kind::kInList: {
      XUPD_ASSIGN_OR_RETURN(Value v, Eval(expr.children[0], ctx));
      if (v.is_null()) return Value::Null();
      for (const Expr& item : expr.in_list) {
        XUPD_ASSIGN_OR_RETURN(Value candidate, Eval(item, ctx));
        if (v.SqlEquals(candidate)) {
          return Value::Int(expr.negated ? 0 : 1);
        }
      }
      return Value::Int(expr.negated ? 1 : 0);
    }
    case Expr::Kind::kInSubquery: {
      XUPD_ASSIGN_OR_RETURN(Value v, Eval(expr.children[0], ctx));
      if (v.is_null()) return Value::Null();
      const auto* set = SubquerySet(expr);
      if (set == nullptr) {
        return Status::Internal("IN subquery evaluation failed");
      }
      bool found = set->count(v) > 0;
      return Value::Int((found != expr.negated) ? 1 : 0);
    }
    case Expr::Kind::kAggregate:
      return Status::InvalidArgument("aggregate outside select list");
  }
  return Status::Internal("unknown expression kind");
}

Result<bool> Executor::EvalBool(const Expr& expr, const EvalContext& ctx) {
  XUPD_ASSIGN_OR_RETURN(Value v, Eval(expr, ctx));
  return Truthy(v);
}

// ---------------------------------------------------------------------------
// SELECT

namespace {

void FlattenConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == Expr::Kind::kBinary && e.op == Expr::Op::kAnd) {
    FlattenConjuncts(e.children[0], out);
    FlattenConjuncts(e.children[1], out);
    return;
  }
  out->push_back(&e);
}

}  // namespace

Result<Executor::Relation> Executor::LookupRelation(
    const std::string& name, const std::string& alias) const {
  Relation rel;
  rel.alias = alias;
  auto cte = ctes_.find(AsciiToLower(name));
  if (cte != ctes_.end()) {
    rel.mat = cte->second.get();
    return rel;
  }
  const Table* table = db_->FindTable(name);
  if (table == nullptr) {
    return Status::NotFound("table '" + name + "' not found");
  }
  rel.table = table;
  return rel;
}

Result<ResultSet> Executor::RunSelect(const sql::SelectStmt& stmt) {
  // Materialize CTEs in order (later CTEs may reference earlier ones).
  std::vector<std::string> cte_names;  // for cleanup
  for (const auto& cte : stmt.ctes) {
    auto result = RunSelect(*cte.query);
    if (!result.ok()) return result.status();
    auto mat = std::make_unique<ResultSet>(std::move(result).value());
    if (!cte.columns.empty()) {
      if (cte.columns.size() != mat->columns.size()) {
        return Status::InvalidArgument("CTE '" + cte.name +
                                       "' column count mismatch");
      }
      mat->columns = cte.columns;
    }
    std::string key = AsciiToLower(cte.name);
    ctes_[key] = std::move(mat);
    cte_names.push_back(key);
  }

  ResultSet out;
  for (size_t i = 0; i < stmt.cores.size(); ++i) {
    auto core = RunSelectCore(stmt.cores[i]);
    if (!core.ok()) return core.status();
    if (i == 0) {
      out = std::move(core).value();
    } else {
      if (core->columns.size() != out.columns.size()) {
        return Status::InvalidArgument("UNION ALL arity mismatch");
      }
      for (Row& row : core->rows) out.rows.push_back(std::move(row));
    }
  }

  if (!stmt.order_by.empty()) {
    std::vector<std::pair<int, bool>> keys;
    for (const auto& item : stmt.order_by) {
      int col = out.ColumnIndex(item.column);
      if (col < 0) {
        return Status::NotFound("ORDER BY column '" + item.column +
                                "' not in result");
      }
      keys.emplace_back(col, item.desc);
    }
    std::stable_sort(out.rows.begin(), out.rows.end(),
                     [&keys](const Row& a, const Row& b) {
                       for (const auto& [col, desc] : keys) {
                         int cmp = a[static_cast<size_t>(col)].Compare(
                             b[static_cast<size_t>(col)]);
                         if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
                       }
                       return false;
                     });
  }

  for (const std::string& key : cte_names) ctes_.erase(key);
  return out;
}

Result<ResultSet> Executor::RunSelectCore(const sql::SelectCore& core) {
  // Bind FROM relations.
  std::vector<Relation> relations;
  for (const sql::TableRef& ref : core.from) {
    auto rel = LookupRelation(ref.table, ref.alias);
    if (!rel.ok()) return rel.status();
    relations.push_back(std::move(rel).value());
  }

  // Up-front name resolution: column references must bind even when tables
  // are empty (lazy per-row evaluation would silently accept them).
  std::function<Status(const Expr&)> validate = [&](const Expr& x) -> Status {
    if (x.kind == Expr::Kind::kColumn) {
      auto rc = ResolveColumn(relations, relations.size(), x.table, x.column);
      if (!rc.ok()) return rc.status();
    }
    if (x.kind == Expr::Kind::kOldColumn && trigger_old_schema_ == nullptr) {
      return Status::InvalidArgument("OLD.* outside a row trigger");
    }
    if (x.kind == Expr::Kind::kAggregate && !x.count_star) {
      auto rc = ResolveColumn(relations, relations.size(), x.table, x.column);
      if (!rc.ok()) return rc.status();
    }
    for (const Expr& c : x.children) XUPD_RETURN_IF_ERROR(validate(c));
    for (const Expr& c : x.in_list) XUPD_RETURN_IF_ERROR(validate(c));
    return Status::OK();
  };
  for (const sql::SelectItem& item : core.items) {
    if (!item.star) XUPD_RETURN_IF_ERROR(validate(item.expr));
  }
  if (core.where.has_value()) XUPD_RETURN_IF_ERROR(validate(*core.where));

  std::vector<const Expr*> conjuncts;
  if (core.where.has_value()) FlattenConjuncts(*core.where, &conjuncts);

  // Highest relation ordinal an expression references (-1 = none). Returns
  // relations.size() for expressions we cannot place (evaluated at the end).
  auto max_ordinal = [&](const Expr* e) -> size_t {
    size_t max_ord = 0;
    bool any = false;
    bool unknown = false;
    std::function<void(const Expr&)> walk = [&](const Expr& x) {
      if (x.kind == Expr::Kind::kColumn) {
        auto rc = ResolveColumn(relations, relations.size(), x.table, x.column);
        if (!rc.ok()) {
          unknown = true;
          return;
        }
        any = true;
        max_ord = std::max(max_ord, rc.value().first);
      }
      if (x.kind == Expr::Kind::kInSubquery || x.kind == Expr::Kind::kInList ||
          x.kind == Expr::Kind::kIsNull || x.kind == Expr::Kind::kUnary ||
          x.kind == Expr::Kind::kBinary) {
        for (const Expr& c : x.children) walk(c);
        for (const Expr& c : x.in_list) walk(c);
      }
    };
    walk(*e);
    if (unknown) return relations.size();
    return any ? max_ord : 0;
  };

  struct PlacedConjunct {
    const Expr* expr;
    size_t at;  // relation ordinal after which it can be evaluated
  };
  std::vector<PlacedConjunct> placed;
  placed.reserve(conjuncts.size());
  for (const Expr* c : conjuncts) {
    size_t at = relations.empty() ? 0 : std::min(max_ordinal(c),
                                                 relations.size() - 1);
    placed.push_back({c, at});
  }

  // Iterative join.
  std::vector<JoinedRow> current;
  current.push_back(JoinedRow(relations.size(), nullptr));
  for (size_t k = 0; k < relations.size(); ++k) {
    const Relation& rel = relations[k];
    // Find an equi-join conjunct usable for an index lookup on rel.
    const Expr* probe_val_expr = nullptr;  // expression over earlier relations
    const HashIndex* index = nullptr;
    if (rel.table != nullptr) {
      for (const PlacedConjunct& pc : placed) {
        if (pc.at != k) continue;
        const Expr& e = *pc.expr;
        if (e.kind != Expr::Kind::kBinary || e.op != Expr::Op::kEq) continue;
        for (int side = 0; side < 2; ++side) {
          const Expr& lhs = e.children[static_cast<size_t>(side)];
          const Expr& rhs = e.children[static_cast<size_t>(1 - side)];
          if (lhs.kind != Expr::Kind::kColumn) continue;
          auto rc =
              ResolveColumn(relations, relations.size(), lhs.table, lhs.column);
          if (!rc.ok() || rc.value().first != k) continue;
          // rhs must not reference relation k or later.
          size_t rhs_ord = max_ordinal(&rhs);
          bool rhs_has_cols = false;
          std::function<void(const Expr&)> has_cols = [&](const Expr& x) {
            if (x.kind == Expr::Kind::kColumn) rhs_has_cols = true;
            for (const Expr& c : x.children) has_cols(c);
          };
          has_cols(rhs);
          if (rhs_has_cols && rhs_ord >= k) continue;
          const HashIndex* idx =
              rel.table->FindIndexOnColumn(static_cast<int>(rc.value().second));
          if (idx != nullptr) {
            probe_val_expr = &rhs;
            index = idx;
            break;
          }
        }
        if (index != nullptr) break;
      }
    }

    std::vector<JoinedRow> next;
    for (JoinedRow& partial : current) {
      EvalContext ctx;
      ctx.relations = &relations;
      ctx.row = &partial;
      ctx.bound = k;  // relations before k are bound
      ctx.old_row = trigger_old_row_;
      ctx.old_schema = trigger_old_schema_;

      auto consider_row = [&](const Row* row) -> Status {
        partial[k] = row;
        EvalContext row_ctx = ctx;
        row_ctx.bound = k + 1;
        for (const PlacedConjunct& pc : placed) {
          if (pc.at != k) continue;
          auto ok = EvalBool(*pc.expr, row_ctx);
          if (!ok.ok()) return ok.status();
          if (!ok.value()) return Status::OK();  // filtered out
        }
        next.push_back(partial);
        return Status::OK();
      };

      if (index != nullptr) {
        auto v = Eval(*probe_val_expr, ctx);
        if (!v.ok()) return v.status();
        std::vector<size_t> rowids;
        index->Lookup(v.value(), &rowids);
        ++db_->stats_.index_probes;
        for (size_t rowid : rowids) {
          if (!rel.table->is_live(rowid)) continue;
          XUPD_RETURN_IF_ERROR(consider_row(&rel.table->row(rowid)));
        }
      } else if (rel.table != nullptr) {
        for (size_t rowid = 0; rowid < rel.table->capacity(); ++rowid) {
          if (!rel.table->is_live(rowid)) continue;
          ++db_->stats_.rows_scanned;
          XUPD_RETURN_IF_ERROR(consider_row(&rel.table->row(rowid)));
        }
      } else {
        for (const Row& row : rel.mat->rows) {
          ++db_->stats_.rows_scanned;
          XUPD_RETURN_IF_ERROR(consider_row(&row));
        }
      }
      partial[k] = nullptr;
    }
    current = std::move(next);
    if (current.empty() && k + 1 < relations.size()) {
      current.clear();
      break;
    }
  }

  // With no FROM clause, `current` holds one empty tuple; apply WHERE.
  if (relations.empty() && core.where.has_value()) {
    EvalContext ctx;
    ctx.old_row = trigger_old_row_;
    ctx.old_schema = trigger_old_schema_;
    auto ok = EvalBool(*core.where, ctx);
    if (!ok.ok()) return ok.status();
    if (!ok.value()) current.clear();
  }

  // Output schema.
  ResultSet out;
  bool has_aggregate = false;
  for (const sql::SelectItem& item : core.items) {
    if (!item.star && item.expr.kind == Expr::Kind::kAggregate) {
      has_aggregate = true;
    }
  }
  size_t anon = 0;
  for (const sql::SelectItem& item : core.items) {
    if (item.star) {
      for (const Relation& rel : relations) {
        for (size_t c = 0; c < rel.NumColumns(); ++c) {
          out.columns.push_back(rel.ColumnName(c));
        }
      }
    } else if (!item.alias.empty()) {
      out.columns.push_back(item.alias);
    } else if (item.expr.kind == Expr::Kind::kColumn) {
      out.columns.push_back(item.expr.column);
    } else {
      out.columns.push_back("expr" + std::to_string(++anon));
    }
  }

  if (has_aggregate) {
    // Scalar aggregation over all joined rows (no GROUP BY in the dialect).
    Row agg_row;
    for (const sql::SelectItem& item : core.items) {
      if (item.star) {
        return Status::InvalidArgument("'*' mixed with aggregates");
      }
      const Expr& e = item.expr;
      if (e.kind != Expr::Kind::kAggregate) {
        return Status::InvalidArgument(
            "non-aggregate select item without GROUP BY");
      }
      int64_t count = 0;
      Value acc;
      for (const JoinedRow& jr : current) {
        EvalContext ctx;
        ctx.relations = &relations;
        ctx.row = &jr;
        ctx.bound = relations.size();
        ctx.old_row = trigger_old_row_;
        ctx.old_schema = trigger_old_schema_;
        Value v;
        if (e.count_star) {
          v = Value::Int(1);
        } else {
          Expr col;
          col.kind = Expr::Kind::kColumn;
          col.table = e.table;
          col.column = e.column;
          auto r = Eval(col, ctx);
          if (!r.ok()) return r.status();
          v = std::move(r).value();
        }
        if (v.is_null()) continue;
        ++count;
        switch (e.agg) {
          case Expr::Agg::kCount:
            break;
          case Expr::Agg::kMin:
            if (acc.is_null() || v.Compare(acc) < 0) acc = v;
            break;
          case Expr::Agg::kMax:
            if (acc.is_null() || v.Compare(acc) > 0) acc = v;
            break;
          case Expr::Agg::kSum: {
            auto vi = CoerceValue(v, ColumnType::kInteger);
            if (!vi.ok()) return vi.status();
            acc = Value::Int((acc.is_null() ? 0 : acc.AsInt()) +
                             vi.value().AsInt());
            break;
          }
        }
      }
      if (e.agg == Expr::Agg::kCount) {
        agg_row.push_back(Value::Int(count));
      } else {
        agg_row.push_back(acc);
      }
    }
    out.rows.push_back(std::move(agg_row));
    return out;
  }

  // Projection.
  for (const JoinedRow& jr : current) {
    EvalContext ctx;
    ctx.relations = &relations;
    ctx.row = &jr;
    ctx.bound = relations.size();
    ctx.old_row = trigger_old_row_;
    ctx.old_schema = trigger_old_schema_;
    Row row;
    row.reserve(out.columns.size());
    for (const sql::SelectItem& item : core.items) {
      if (item.star) {
        for (size_t r = 0; r < relations.size(); ++r) {
          const Row* src = jr[r];
          for (size_t c = 0; c < relations[r].NumColumns(); ++c) {
            row.push_back((*src)[c]);
          }
        }
      } else {
        auto v = Eval(item.expr, ctx);
        if (!v.ok()) return v.status();
        row.push_back(std::move(v).value());
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

// ---------------------------------------------------------------------------
// DML

Result<std::vector<size_t>> Executor::SelectRowids(const Table* table,
                                                   const sql::Expr* where,
                                                   const EvalContext& outer) {
  std::vector<size_t> out;
  std::vector<Relation> relations(1);
  relations[0].alias = table->schema().name();
  relations[0].table = table;

  std::vector<const Expr*> conjuncts;
  if (where != nullptr) FlattenConjuncts(*where, &conjuncts);

  // Index-assisted path: col = <bound expr> or col IN (list of literals).
  const HashIndex* index = nullptr;
  std::vector<Value> probe_values;
  const Expr* index_conjunct = nullptr;
  for (const Expr* c : conjuncts) {
    if (c->kind == Expr::Kind::kBinary && c->op == Expr::Op::kEq) {
      for (int side = 0; side < 2; ++side) {
        const Expr& lhs = c->children[static_cast<size_t>(side)];
        const Expr& rhs = c->children[static_cast<size_t>(1 - side)];
        if (lhs.kind != Expr::Kind::kColumn) continue;
        int col = table->schema().ColumnIndex(lhs.column);
        if (col < 0) continue;
        bool rhs_has_cols = false;
        std::function<void(const Expr&)> walk = [&](const Expr& x) {
          if (x.kind == Expr::Kind::kColumn) rhs_has_cols = true;
          for (const Expr& ch : x.children) walk(ch);
        };
        walk(rhs);
        if (rhs_has_cols) continue;
        const HashIndex* idx = table->FindIndexOnColumn(col);
        if (idx == nullptr) continue;
        EvalContext ctx = outer;
        ctx.relations = nullptr;
        ctx.row = nullptr;
        ctx.bound = 0;
        auto v = Eval(rhs, ctx);
        if (!v.ok()) return v.status();
        index = idx;
        probe_values.push_back(std::move(v).value());
        index_conjunct = c;
        break;
      }
    } else if (c->kind == Expr::Kind::kInList && !c->negated &&
               c->children[0].kind == Expr::Kind::kColumn) {
      int col = table->schema().ColumnIndex(c->children[0].column);
      if (col < 0) continue;
      const HashIndex* idx = table->FindIndexOnColumn(col);
      if (idx == nullptr) continue;
      EvalContext ctx = outer;
      std::vector<Value> values;
      bool all_const = true;
      for (const Expr& item : c->in_list) {
        auto v = Eval(item, ctx);
        if (!v.ok()) {
          all_const = false;
          break;
        }
        values.push_back(std::move(v).value());
      }
      if (!all_const) continue;
      index = idx;
      probe_values = std::move(values);
      index_conjunct = c;
    } else if (c->kind == Expr::Kind::kInSubquery && !c->negated &&
               c->children[0].kind == Expr::Kind::kColumn) {
      // col IN (SELECT ...): evaluate the subquery once and probe the index
      // per distinct value (semijoin) instead of scanning the table.
      int col = table->schema().ColumnIndex(c->children[0].column);
      if (col < 0) continue;
      const HashIndex* idx = table->FindIndexOnColumn(col);
      if (idx == nullptr) continue;
      const auto* set = SubquerySet(*c);
      if (set == nullptr) continue;
      index = idx;
      probe_values.assign(set->begin(), set->end());
      index_conjunct = c;
    }
    if (index != nullptr) break;
  }

  auto matches = [&](size_t rowid) -> Result<bool> {
    JoinedRow jr{&table->row(rowid)};
    EvalContext ctx = outer;
    ctx.relations = &relations;
    ctx.row = &jr;
    ctx.bound = 1;
    for (const Expr* c : conjuncts) {
      if (c == index_conjunct) continue;
      auto ok = EvalBool(*c, ctx);
      if (!ok.ok()) return ok.status();
      if (!ok.value()) return false;
    }
    return true;
  };

  if (index != nullptr) {
    std::vector<size_t> candidates;
    for (const Value& v : probe_values) {
      index->Lookup(v, &candidates);
      ++db_->stats_.index_probes;
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (size_t rowid : candidates) {
      if (!table->is_live(rowid)) continue;
      auto ok = matches(rowid);
      if (!ok.ok()) return ok.status();
      if (ok.value()) out.push_back(rowid);
    }
    return out;
  }

  for (size_t rowid = 0; rowid < table->capacity(); ++rowid) {
    if (!table->is_live(rowid)) continue;
    ++db_->stats_.rows_scanned;
    auto ok = matches(rowid);
    if (!ok.ok()) return ok.status();
    if (ok.value()) out.push_back(rowid);
  }
  return out;
}

Result<ResultSet> Executor::RunInsert(const sql::InsertStmt& stmt) {
  Table* table = db_->FindTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  const TableSchema& schema = table->schema();
  std::vector<int> column_map;  // position in statement -> schema column
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.column_count(); ++i) {
      column_map.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : stmt.columns) {
      int col = schema.ColumnIndex(name);
      if (col < 0) {
        return Status::NotFound("column '" + name + "' not found in '" +
                                stmt.table + "'");
      }
      column_map.push_back(col);
    }
  }

  auto build_row = [&](const std::vector<Value>& values) -> Result<Row> {
    if (values.size() != column_map.size()) {
      return Status::InvalidArgument("INSERT arity mismatch");
    }
    Row row(schema.column_count(), Value::Null());
    for (size_t i = 0; i < values.size(); ++i) {
      auto coerced = CoerceValue(
          values[i], schema.columns()[static_cast<size_t>(column_map[i])].type);
      if (!coerced.ok()) return coerced.status();
      row[static_cast<size_t>(column_map[i])] = std::move(coerced).value();
    }
    return row;
  };

  if (stmt.select != nullptr) {
    auto result = RunSelect(*stmt.select);
    if (!result.ok()) return result.status();
    for (const Row& row : result->rows) {
      XUPD_ASSIGN_OR_RETURN(Row built, build_row(row));
      auto rowid = table->Insert(std::move(built));
      if (!rowid.ok()) return rowid.status();
      ++db_->stats_.rows_inserted;
    }
    return ResultSet{};
  }

  EvalContext ctx;
  ctx.old_row = trigger_old_row_;
  ctx.old_schema = trigger_old_schema_;
  // Evaluate and coerce every VALUES row before inserting any, so a bad row
  // leaves the table untouched (multi-row INSERT is atomic).
  std::vector<Row> built_rows;
  built_rows.reserve(stmt.rows.size());
  for (const auto& exprs : stmt.rows) {
    std::vector<Value> values;
    values.reserve(exprs.size());
    for (const Expr& e : exprs) {
      auto v = Eval(e, ctx);
      if (!v.ok()) return v.status();
      values.push_back(std::move(v).value());
    }
    XUPD_ASSIGN_OR_RETURN(Row built, build_row(values));
    built_rows.push_back(std::move(built));
  }
  for (Row& row : built_rows) {
    auto rowid = table->Insert(std::move(row));
    if (!rowid.ok()) return rowid.status();
    ++db_->stats_.rows_inserted;
  }
  if (stmt.rows.size() > 1) db_->stats_.batched_rows += stmt.rows.size();
  return ResultSet{};
}

Result<ResultSet> Executor::RunDelete(const sql::DeleteStmt& stmt) {
  Table* table = db_->FindTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  EvalContext outer;
  outer.old_row = trigger_old_row_;
  outer.old_schema = trigger_old_schema_;
  auto rowids = SelectRowids(table, stmt.where.has_value() ? &*stmt.where
                                                           : nullptr,
                             outer);
  if (!rowids.ok()) return rowids.status();

  std::vector<Row> deleted_rows;
  deleted_rows.reserve(rowids->size());
  for (size_t rowid : *rowids) {
    deleted_rows.push_back(table->row(rowid));
    XUPD_RETURN_IF_ERROR(table->Delete(rowid));
    ++db_->stats_.rows_deleted;
  }
  XUPD_RETURN_IF_ERROR(FireDeleteTriggers(table, deleted_rows));
  return ResultSet{};
}

Status Executor::FireDeleteTriggers(const Table* table,
                                    const std::vector<Row>& deleted_rows) {
  if (deleted_rows.empty()) return Status::OK();
  if (trigger_depth_ > 100) {
    return Status::Internal("trigger recursion limit exceeded");
  }
  ++trigger_depth_;
  const std::string& table_name = table->schema().name();
  // Snapshot the trigger list: bodies may not add triggers, but the vector
  // could reallocate if they did.
  std::vector<Database::TriggerDef> defs;
  for (const auto& t : db_->triggers_) {
    if (EqualsIgnoreCase(t.table, table_name)) defs.push_back(t);
  }
  for (const auto& def : defs) {
    if (def.granularity == sql::TriggerGranularity::kRow) {
      for (const Row& row : deleted_rows) {
        ++db_->stats_.trigger_firings;
        const Row* saved_row = trigger_old_row_;
        const TableSchema* saved_schema = trigger_old_schema_;
        trigger_old_row_ = &row;
        trigger_old_schema_ = &table->schema();
        for (const auto& body_stmt : def.body) {
          ++db_->stats_.trigger_statements;
          auto r = Run(*body_stmt);
          if (!r.ok()) {
            trigger_old_row_ = saved_row;
            trigger_old_schema_ = saved_schema;
            --trigger_depth_;
            return r.status();
          }
        }
        trigger_old_row_ = saved_row;
        trigger_old_schema_ = saved_schema;
      }
    } else {
      ++db_->stats_.trigger_firings;
      const Row* saved_row = trigger_old_row_;
      const TableSchema* saved_schema = trigger_old_schema_;
      trigger_old_row_ = nullptr;
      trigger_old_schema_ = nullptr;
      for (const auto& body_stmt : def.body) {
        ++db_->stats_.trigger_statements;
        auto r = Run(*body_stmt);
        if (!r.ok()) {
          trigger_old_row_ = saved_row;
          trigger_old_schema_ = saved_schema;
          --trigger_depth_;
          return r.status();
        }
      }
      trigger_old_row_ = saved_row;
      trigger_old_schema_ = saved_schema;
    }
  }
  --trigger_depth_;
  return Status::OK();
}

Result<ResultSet> Executor::RunUpdate(const sql::UpdateStmt& stmt) {
  Table* table = db_->FindTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  EvalContext outer;
  outer.old_row = trigger_old_row_;
  outer.old_schema = trigger_old_schema_;
  auto rowids = SelectRowids(table, stmt.where.has_value() ? &*stmt.where
                                                           : nullptr,
                             outer);
  if (!rowids.ok()) return rowids.status();

  std::vector<Relation> relations(1);
  relations[0].alias = table->schema().name();
  relations[0].table = table;

  std::vector<std::pair<int, Expr const*>> sets;
  for (const auto& [name, expr] : stmt.sets) {
    int col = table->schema().ColumnIndex(name);
    if (col < 0) {
      return Status::NotFound("column '" + name + "' not found");
    }
    sets.emplace_back(col, &expr);
  }

  for (size_t rowid : *rowids) {
    // Evaluate all SET expressions against the pre-update row.
    Row snapshot = table->row(rowid);
    JoinedRow jr{&snapshot};
    EvalContext ctx = outer;
    ctx.relations = &relations;
    ctx.row = &jr;
    ctx.bound = 1;
    std::vector<std::pair<int, Value>> new_values;
    for (const auto& [col, expr] : sets) {
      auto v = Eval(*expr, ctx);
      if (!v.ok()) return v.status();
      auto coerced = CoerceValue(std::move(v).value(),
                                 table->schema().columns()[static_cast<size_t>(col)].type);
      if (!coerced.ok()) return coerced.status();
      new_values.emplace_back(col, std::move(coerced).value());
    }
    for (auto& [col, value] : new_values) {
      XUPD_RETURN_IF_ERROR(table->SetColumn(rowid, col, std::move(value)));
    }
    ++db_->stats_.rows_updated;
  }
  return ResultSet{};
}

}  // namespace xupd::rdb
