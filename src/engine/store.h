// RelationalStore: an XML repository over the relational engine — the
// system under evaluation in §6/§7. Wires together the Shared Inlining
// mapping, the shredder, the Sorted Outer Union, ASRs, and the paper's
// delete/insert translation strategies.
#ifndef XUPD_ENGINE_STORE_H_
#define XUPD_ENGINE_STORE_H_

#include <functional>
#include <utility>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "asr/asr.h"
#include "common/result.h"
#include "rdb/database.h"
#include "shred/mapping.h"
#include "shred/outer_union.h"
#include "shred/shredder.h"
#include "xml/document.h"
#include "xml/dtd.h"

namespace xupd::engine {

/// §6.1 delete translation strategies.
enum class DeleteStrategy {
  kPerTupleTrigger,      ///< AFTER DELETE FOR EACH ROW triggers (6.1.1).
  kPerStatementTrigger,  ///< AFTER DELETE FOR EACH STATEMENT triggers (6.1.1).
  kCascade,              ///< application-level orphan sweeps (6.1.2).
  kAsr,                  ///< ASR marking scheme (6.1.3).
};

/// §6.2 insert (subtree copy) translation strategies.
enum class InsertStrategy {
  kTuple,  ///< outer-union read + one INSERT per tuple (6.2.1).
  kTable,  ///< temp tables + min/max id-offset remap en masse (6.2.2).
  kAsr,    ///< ASR marking + offset remap, no outer union (6.2.3).
};

const char* ToString(DeleteStrategy s);
const char* ToString(InsertStrategy s);

class RelationalStore {
 public:
  struct Options {
    DeleteStrategy delete_strategy = DeleteStrategy::kPerTupleTrigger;
    InsertStrategy insert_strategy = InsertStrategy::kTable;
    /// Build and maintain the ASR (implied by the ASR strategies).
    bool build_asr = false;
    /// Load documents through INSERT statements instead of the bulk API.
    bool load_via_sql = false;
    /// Rows per multi-row INSERT on the SQL insert paths (tuple-strategy
    /// copies, constructed-content inserts, SQL loads). 1 restores the
    /// paper's one-statement-per-tuple regime exactly — literal SQL text,
    /// parsed per tuple (§6.2.1); larger values batch tuples of the same
    /// table into one prepared multi-row statement.
    int insert_batch_size = 64;
    /// Wrap every update entry point (DeleteWhere/DeleteByIds/CopySubtree*/
    /// InsertConstructed/ExecuteXQueryUpdate) in a transaction, so a
    /// mid-operation failure rolls element tables, hash indexes and the ASR
    /// back to the pre-operation state. Nested sub-updates become
    /// savepoints. false = the paper's raw autocommit regime (each SQL
    /// statement lands individually; a failure leaves partial effects).
    bool transactional = true;
    /// Durability (rdb/wal.h): when true the store's Database opens a WAL +
    /// snapshot pair under `data_dir` before creating any schema. If the
    /// directory already holds durable state, Create() RECOVERS it instead
    /// of re-creating the schema: element tables, hash indexes, the ASR,
    /// triggers, tombstones and the next-id counter come back exactly as
    /// last committed, and root_id() is re-derived from the stored root
    /// tuple. Reopen with the same strategy options the store was created
    /// with (recovered triggers must match the delete strategy).
    bool durability = false;
    std::string data_dir;
    /// WAL fsync policy (none / commit / batched group commit).
    rdb::SyncMode sync_mode = rdb::SyncMode::kCommit;
    /// Filesystem interface for all durable I/O; null means the real one
    /// (rdb::Vfs::Default()). Fault-injection tests interpose a FaultVfs.
    rdb::Vfs* vfs = nullptr;
    /// Per-operation deadline in microseconds (0 = none): every update entry
    /// point (DeleteWhere/DeleteByIds/CopySubtree*/InsertConstructed) arms
    /// Database::ArmOperationDeadline for its duration, so a runaway
    /// multi-statement operation fails with kDeadlineExceeded and — under
    /// `transactional` — rolls back to the pre-operation state.
    int64_t op_timeout_us = 0;
  };

  /// Creates the store for a DTD: derives the mapping, creates the schema,
  /// and installs the triggers the delete strategy requires.
  static Result<std::unique_ptr<RelationalStore>> Create(const xml::Dtd& dtd,
                                                         const Options& options);

  /// Shreds and loads a document (must match the DTD root).
  Status Load(const xml::Document& doc);

  // --- §6.1: deletes -------------------------------------------------------

  /// Deletes every subtree of `element` whose root tuple satisfies the SQL
  /// predicate (empty = all), using the configured strategy.
  Status DeleteWhere(const std::string& element, const std::string& predicate);

  /// Random-workload flavor: one delete operation per id (the paper issues
  /// one SQL statement per deleted subtree, §7.3).
  Status DeleteByIds(const std::string& element,
                     const std::vector<int64_t>& ids);

  // --- §6.2: inserts -------------------------------------------------------

  /// Copies the subtree of `element` rooted at tuple `src_id` under the
  /// tuple `dest_parent_id` (copy semantics; fresh ids), using the
  /// configured strategy.
  Status CopySubtree(const std::string& element, int64_t src_id,
                     int64_t dest_parent_id);

  /// Bulk flavor: copies every subtree of `element` whose root tuple
  /// satisfies the SQL predicate (empty = all) in ONE strategy pass — the
  /// paper's bulk insert workload is a single operation over all subtrees,
  /// which is what lets the table method batch its statements (§7.4).
  Status CopySubtreesWhere(const std::string& element,
                           const std::string& predicate,
                           int64_t dest_parent_id);

  /// Inserts newly constructed content (an element subtree that maps to a
  /// table) under `dest_parent_id`. Issues one INSERT per shredded tuple.
  Status InsertConstructed(const xml::Element& content, int64_t dest_parent_id);

  // --- queries -------------------------------------------------------------

  /// ids of `element` tuples matching the predicate (empty = all).
  Result<std::vector<int64_t>> SelectIds(const std::string& element,
                                         const std::string& predicate);

  /// §7.2 path-expression evaluation, conventional plan: chain of
  /// parentId/id joins from the (filtered) leaf up to `start_element`.
  Result<std::vector<int64_t>> PathQueryJoins(const std::string& start_element,
                                              const std::string& leaf_element,
                                              const std::string& leaf_predicate);

  /// §7.2 path-expression evaluation through the ASR: filter leaf, join ASR,
  /// join start table (two joins regardless of path length).
  Result<std::vector<int64_t>> PathQueryAsr(const std::string& start_element,
                                            const std::string& leaf_element,
                                            const std::string& leaf_predicate);

  /// Sorted Outer Union stream for the region rooted at `element` (§5.2).
  Result<rdb::ResultSet> OuterUnion(const std::string& element,
                                    const std::string& root_where);

  /// Reconstructs the whole stored document.
  Result<std::unique_ptr<xml::Document>> Reconstruct();

  /// Executes an XQuery update statement against the store (translated to
  /// SQL; see engine/translator.cc for the supported subset). The whole
  /// statement executes in one transaction: any error leaves the store
  /// exactly as it was (Options::transactional).
  Status ExecuteXQueryUpdate(std::string_view query);

  /// Durability: serializes the full store state to a fresh snapshot and
  /// truncates the WAL (Database::Checkpoint). Requires Options::durability.
  Status Checkpoint();

  /// True when Create() recovered existing durable state from
  /// Options::data_dir instead of building a fresh store.
  bool recovered() const { return db_.recovered(); }

  /// Engine-level integrity scrub (engine/verify.cc): every element tuple's
  /// parent chain reaches the stored root without cycles, and the ASR (when
  /// built) agrees with the element tables. Read-only; complements
  /// Database::VerifyIntegrity, which checks the relational layer below.
  std::vector<std::string> VerifyStore();

  /// Stages `ids` in the shared scratch table `xupd_idlist` (created lazily
  /// through the direct catalog API) and returns the predicate
  /// "<column> IN (SELECT id FROM xupd_idlist)". Unlike a literal
  /// "<column> IN (1, 2, ...)" list, the statement texts this produces are
  /// constant across calls, so the predicates the XQuery translator emits
  /// reuse cached plans no matter which ids are bound.
  Result<std::string> IdListPredicate(const std::string& column,
                                      const std::vector<int64_t>& ids);

  // --- accessors -----------------------------------------------------------

  rdb::Database* db() { return &db_; }
  /// The ASR manager, or null when the store was built without an ASR.
  const asr::AsrManager* asr() const { return asr_.get(); }
  const shred::Mapping& mapping() const { return *mapping_; }
  const Options& options() const { return options_; }
  int64_t root_id() const { return root_id_; }
  const rdb::Stats& stats() const { return db_.stats(); }
  shred::Shredder* shredder() { return shredder_.get(); }

 private:
  RelationalStore() = default;

  /// Runs `fn` inside a transaction scope (a savepoint when one is already
  /// open): Begin, fn, Commit — or Rollback when fn fails, propagating fn's
  /// error. With Options::transactional off it just runs fn.
  Status RunInTxn(const std::function<Status()>& fn);

  Status InstallTriggers();
  /// Writes the strategy Options into the durable xupd_meta table (store
  /// creation) / verifies the caller's Options against it (reopen) — a
  /// mismatched reopen is a clean error, not silent corruption.
  Status PersistOptions();
  Status VerifyStoredOptions();
  std::vector<std::pair<std::string, std::string>> StrategyFields() const;
  Status DeleteSubtreesImpl(const shred::TableMapping* tm,
                            const std::string& predicate);
  Status CascadeDelete(const shred::TableMapping* tm,
                       const std::string& predicate);
  Status AsrDelete(const shred::TableMapping* tm, const std::string& predicate);
  Status TupleInsert(const shred::TableMapping* tm,
                     const std::string& predicate, int64_t dest_parent_id);
  /// Phase wrapper: creates the temp staging tables through the direct
  /// catalog API (DDL is barred inside transactions), runs the DML phase in
  /// a transaction scope, and always drops the staging tables.
  Status TableInsert(const shred::TableMapping* tm,
                     const std::string& predicate, int64_t dest_parent_id);
  Status TableInsertDml(const std::vector<const shred::TableMapping*>& region,
                        const shred::TableMapping* tm,
                        const std::string& predicate, int64_t dest_parent_id);
  Status InsertConstructedImpl(const xml::Element& content,
                               int64_t dest_parent_id);
  Status AsrInsert(const shred::TableMapping* tm, const std::string& predicate,
                   int64_t dest_parent_id);
  /// (table, id) chain from the mapping root down to `id`'s parent — used to
  /// rebuild ASR rows. Walks parentId pointers with point queries.
  Result<std::vector<std::pair<const shred::TableMapping*, int64_t>>>
  AncestorChain(const shred::TableMapping* tm, int64_t id);

  /// "INSERT INTO asr VALUES (?, ..., ?, 0)" — one placeholder per mapping
  /// table, unmarked. Pair with AsrRowParams for the bound values.
  std::string AsrInsertRowSql() const;
  std::vector<rdb::Value> AsrRowParams(
      const std::map<const shred::TableMapping*, int64_t>& ids) const;

  Options options_;
  std::unique_ptr<shred::Mapping> mapping_;
  rdb::Database db_;
  std::unique_ptr<shred::Shredder> shredder_;
  std::unique_ptr<asr::AsrManager> asr_;
  int64_t root_id_ = 0;
};

}  // namespace xupd::engine

#endif  // XUPD_ENGINE_STORE_H_
