// Recursive-descent XML parser producing the xupd data model. Supports
// elements, attributes, PCDATA, comments, processing instructions, CDATA,
// character/entity references, and an inline <!DOCTYPE [ ... ]> internal
// subset (parsed with xml::Dtd).
//
// Attribute classification: an attribute is stored as an IDREF/IDREFS list
// when (a) the DTD declares it IDREF/IDREFS, or (b) its name appears in
// ParseOptions::ref_attributes. The document's id attribute defaults to "ID".
#ifndef XUPD_XML_PARSER_H_
#define XUPD_XML_PARSER_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/document.h"
#include "xml/dtd.h"

namespace xupd::xml {

struct ParseOptions {
  /// External DTD used to classify ID/IDREF/IDREFS attributes. If null and
  /// the document has an internal subset, that subset is used instead.
  const Dtd* dtd = nullptr;

  /// Attribute names treated as IDREF(S) regardless of DTD (the paper's bio
  /// example uses managers/source/biologist/lab without a DTD).
  std::set<std::string> ref_attributes;

  /// Name of the identity attribute.
  std::string id_attribute = "ID";

  /// Keep whitespace-only text nodes (default: dropped, as they are
  /// formatting artifacts in data-oriented XML).
  bool keep_whitespace_text = false;
};

/// Result of a parse: the document plus the internal-subset DTD if present.
struct ParsedXml {
  std::unique_ptr<Document> document;
  std::optional<Dtd> internal_dtd;
};

/// Parses a complete XML document. Errors carry 1-based line/column info.
Result<ParsedXml> ParseXml(std::string_view text, const ParseOptions& options);

/// Convenience overload with default options.
Result<ParsedXml> ParseXml(std::string_view text);

/// Parses a single element fragment (used by XQuery element constructors,
/// e.g. INSERT <firstname>Jeff</firstname>). Ref classification follows
/// `options` as above.
Result<std::unique_ptr<Element>> ParseFragment(std::string_view text,
                                               const ParseOptions& options);

}  // namespace xupd::xml

#endif  // XUPD_XML_PARSER_H_
