// Access Support Relations (§5.3, after Kemper & Moerkotte [12]).
//
// One relation `asr` indexes every root-to-leaf path instance of the table
// hierarchy: one column `id_<table>` per mapped table (pre-order) plus a
// `marked` work column used by the ASR delete/insert marking scheme
// (§6.1.3/§6.2.3). Left-complete extension: NULLs appear only below the
// deepest existing element of a path.
#ifndef XUPD_ASR_ASR_H_
#define XUPD_ASR_ASR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rdb/database.h"
#include "shred/mapping.h"
#include "shred/shredder.h"

namespace xupd::asr {

class AsrManager {
 public:
  AsrManager(const shred::Mapping* mapping, rdb::Database* db)
      : mapping_(mapping), db_(db) {}

  static constexpr const char* kTableName = "asr";

  /// The ASR column holding ids of `t`'s tuples.
  static std::string IdColumn(const shred::TableMapping* t) {
    return "id_" + t->table;
  }

  /// CREATE TABLE asr(...) + an index on every id column.
  Status CreateSchema();

  /// Builds all path rows from freshly shredded tuples (bulk, direct API).
  Status BuildFromTuples(const std::vector<shred::ShreddedTuple>& tuples);

  /// Number of ASR rows (live).
  size_t RowCount() const;

  const shred::Mapping* mapping() const { return mapping_; }

 private:
  const shred::Mapping* mapping_;
  rdb::Database* db_;
};

}  // namespace xupd::asr

#endif  // XUPD_ASR_ASR_H_
