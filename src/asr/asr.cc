#include "asr/asr.h"

#include <functional>
#include <map>

#include "common/str_util.h"

namespace xupd::asr {

using rdb::Value;
using shred::ShreddedTuple;
using shred::TableMapping;

Status AsrManager::CreateSchema() {
  std::string sql = std::string("CREATE TABLE ") + kTableName + " (";
  bool first = true;
  for (const TableMapping& t : mapping_->tables()) {
    if (!first) sql += ", ";
    sql += IdColumn(&t) + " INTEGER";
    first = false;
  }
  sql += ", marked INTEGER)";
  XUPD_RETURN_IF_ERROR(db_->Execute(sql));
  for (const TableMapping& t : mapping_->tables()) {
    XUPD_RETURN_IF_ERROR(db_->Execute("CREATE INDEX idx_asr_" + t.table +
                                      " ON " + kTableName + " (" +
                                      IdColumn(&t) + ")"));
  }
  // Deliberately no index on `marked`: nearly every row holds the same value
  // (0), so a hash index would degenerate (O(n) erase per update). Scanning
  // the ASR for marked rows is part of the method's cost (§6.1.3).
  return Status::OK();
}

Status AsrManager::BuildFromTuples(const std::vector<ShreddedTuple>& tuples) {
  rdb::Table* asr_table = db_->FindTable(kTableName);
  if (asr_table == nullptr) {
    return Status::Internal("ASR table missing; call CreateSchema first");
  }
  // Column position per mapped table.
  std::map<const TableMapping*, size_t> col_of;
  for (size_t i = 0; i < mapping_->tables().size(); ++i) {
    col_of[&mapping_->tables()[i]] = i;
  }
  size_t width = mapping_->tables().size() + 1;  // + marked

  // Children adjacency over tuple ids.
  std::map<int64_t, std::vector<const ShreddedTuple*>> children;
  const ShreddedTuple* root = nullptr;
  for (const ShreddedTuple& t : tuples) {
    if (t.parent_id == 0) {
      root = &t;
    } else {
      children[t.parent_id].push_back(&t);
    }
  }
  if (root == nullptr) {
    return Status::InvalidArgument("no root tuple in shredded set");
  }

  // DFS emitting one left-complete row per leaf-most instance.
  rdb::Row current(width, Value::Null());
  current[width - 1] = Value::Int(0);  // marked = 0
  std::function<Status(const ShreddedTuple*)> walk =
      [&](const ShreddedTuple* node) -> Status {
    size_t col = col_of.at(node->table);
    current[col] = Value::Int(node->id);
    auto it = children.find(node->id);
    if (it == children.end() || it->second.empty()) {
      XUPD_RETURN_IF_ERROR(db_->InsertDirect(asr_table, current));
    } else {
      for (const ShreddedTuple* child : it->second) {
        XUPD_RETURN_IF_ERROR(walk(child));
      }
    }
    current[col] = Value::Null();
    return Status::OK();
  };
  XUPD_RETURN_IF_ERROR(walk(root));
  return Status::OK();
}

size_t AsrManager::RowCount() const {
  const rdb::Table* t = db_->FindTable(kTableName);
  return t == nullptr ? 0 : t->live_count();
}

}  // namespace xupd::asr
