#include "rdb/table.h"

#include "rdb/txn.h"

namespace xupd::rdb {

// ---------------------------------------------------------------------------
// HashIndex: flat open-addressing (value, rowid) pair table + chain heads.

namespace {
constexpr uint8_t kEmpty = 0;
constexpr uint8_t kOccupied = 1;
constexpr uint8_t kTombstone = 2;
constexpr int32_t kHeadEmpty = -1;
constexpr int32_t kHeadTombstone = -2;
constexpr size_t kInitialCap = 16;
}  // namespace

int32_t HashIndex::FindPair(uint64_t vhash, const Value& v,
                            size_t rowid) const {
  if (slots_.empty()) return -1;
  const size_t mask = slots_.size() - 1;
  size_t pos = PairHash(vhash, rowid) & mask;
  for (;;) {
    const Slot& s = slots_[pos];
    if (s.state == kEmpty) return -1;
    if (s.state == kOccupied && s.rowid == rowid && s.vhash == vhash &&
        s.value == v) {
      return static_cast<int32_t>(pos);
    }
    pos = (pos + 1) & mask;
  }
}

int32_t HashIndex::FindHead(uint64_t vhash, const Value& v) const {
  if (heads_.empty()) return -1;
  const size_t mask = heads_.size() - 1;
  size_t pos = HeadHash(vhash) & mask;
  for (;;) {
    int32_t head = heads_[pos];
    if (head == kHeadEmpty) return -1;
    if (head != kHeadTombstone) {
      const Slot& s = slots_[static_cast<size_t>(head)];
      if (s.vhash == vhash && s.value == v) return static_cast<int32_t>(pos);
    }
    pos = (pos + 1) & mask;
  }
}

void HashIndex::Rehash(size_t new_cap) {
  std::vector<Slot> old = std::move(slots_);
  slots_.clear();
  slots_.resize(new_cap);
  heads_.assign(new_cap, kHeadEmpty);
  slots_used_ = 0;
  heads_used_ = 0;
  size_ = 0;
  for (Slot& s : old) {
    if (s.state == kOccupied) InsertEntry(s.vhash, s.value, s.rowid);
  }
}

void HashIndex::Insert(const Value& v, size_t rowid) {
  // Grow at 3/4 load of the entry table (tombstones count — they lengthen
  // probe runs just like live entries).
  if (slots_.empty()) {
    Rehash(kInitialCap);
  } else if ((slots_used_ + 1) * 4 > slots_.size() * 3 ||
             (heads_used_ + 1) * 4 > heads_.size() * 3) {
    Rehash(slots_.size() * 2);
  }
  InsertEntry(v.Hash(), v, rowid);
}

void HashIndex::InsertEntry(uint64_t vhash, const Value& v, size_t rowid) {
  const size_t mask = slots_.size() - 1;

  // One probe pass finds an existing exact pair (duplicate insert = no-op,
  // matching the old map-of-sets semantics) or the insertion slot.
  size_t pos = PairHash(vhash, rowid) & mask;
  int32_t insert_at = -1;
  for (;;) {
    const Slot& s = slots_[pos];
    if (s.state == kEmpty) {
      if (insert_at < 0) insert_at = static_cast<int32_t>(pos);
      break;
    }
    if (s.state == kTombstone) {
      if (insert_at < 0) insert_at = static_cast<int32_t>(pos);
    } else if (s.rowid == rowid && s.vhash == vhash && s.value == v) {
      return;  // exact pair already present
    }
    pos = (pos + 1) & mask;
  }

  Slot& dst = slots_[static_cast<size_t>(insert_at)];
  const bool was_empty = dst.state == kEmpty;
  dst.vhash = vhash;
  dst.rowid = rowid;
  dst.value = v;
  dst.prev = -1;
  dst.next = -1;
  dst.state = kOccupied;
  if (was_empty) ++slots_used_;
  ++size_;

  // Link at the head of the key's chain.
  const size_t hmask = heads_.size() - 1;
  size_t hpos = HeadHash(vhash) & hmask;
  int32_t hinsert = -1;
  for (;;) {
    int32_t head = heads_[hpos];
    if (head == kHeadEmpty) {
      if (hinsert < 0) {
        hinsert = static_cast<int32_t>(hpos);
        ++heads_used_;
      }
      heads_[static_cast<size_t>(hinsert)] = insert_at;
      return;
    }
    if (head == kHeadTombstone) {
      if (hinsert < 0) hinsert = static_cast<int32_t>(hpos);
    } else {
      Slot& h = slots_[static_cast<size_t>(head)];
      if (h.vhash == vhash && h.value == v) {
        dst.next = head;
        h.prev = insert_at;
        heads_[hpos] = insert_at;
        return;
      }
    }
    hpos = (hpos + 1) & hmask;
  }
}

void HashIndex::Erase(const Value& v, size_t rowid) {
  const uint64_t vhash = v.Hash();
  int32_t at = FindPair(vhash, v, rowid);
  if (at < 0) return;
  Slot& s = slots_[static_cast<size_t>(at)];
  if (s.prev >= 0) {
    slots_[static_cast<size_t>(s.prev)].next = s.next;
    if (s.next >= 0) slots_[static_cast<size_t>(s.next)].prev = s.prev;
  } else {
    // Chain head: repoint (or tombstone) its heads_ entry.
    int32_t hpos = FindHead(vhash, v);
    if (hpos >= 0) {
      if (s.next >= 0) {
        heads_[static_cast<size_t>(hpos)] = s.next;
        slots_[static_cast<size_t>(s.next)].prev = -1;
      } else {
        heads_[static_cast<size_t>(hpos)] = kHeadTombstone;
      }
    }
  }
  s.state = kTombstone;
  s.value = Value();  // release a heap string's reference
  s.prev = -1;
  s.next = -1;
  --size_;
}

void HashIndex::Lookup(const Value& v, std::vector<size_t>* out) const {
  int32_t hpos = FindHead(v.Hash(), v);
  if (hpos < 0) return;
  for (int32_t at = heads_[static_cast<size_t>(hpos)]; at >= 0;
       at = slots_[static_cast<size_t>(at)].next) {
    out->push_back(slots_[static_cast<size_t>(at)].rowid);
  }
}

void HashIndex::Clear() {
  for (Slot& s : slots_) s = Slot();
  heads_.assign(heads_.size(), kHeadEmpty);
  size_ = 0;
  slots_used_ = 0;
  heads_used_ = 0;
}

// ---------------------------------------------------------------------------
// Table

Result<size_t> Table::Insert(Row row) {
  if (row.size() != arity_) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table '" +
        schema_.name() + "' (" + std::to_string(arity_) + ")");
  }
  size_t rowid = live_.size();
  if (interner_ != nullptr) {
    for (Value& v : row) interner_->InternInPlace(&v);
  }
  for (const auto& index : indexes_) {
    index->Insert(row[static_cast<size_t>(index->column())], rowid);
  }
  slab_.insert(slab_.end(), std::make_move_iterator(row.begin()),
               std::make_move_iterator(row.end()));
  live_.push_back(true);
  ++live_count_;
  if (txn_ != nullptr) txn_->LogInsert(this, rowid);
  return rowid;
}

void Table::LoadSlot(Row row, bool live) {
  if (interner_ != nullptr) {
    for (Value& v : row) interner_->InternInPlace(&v);
  }
  slab_.insert(slab_.end(), std::make_move_iterator(row.begin()),
               std::make_move_iterator(row.end()));
  live_.push_back(live);
  if (live) ++live_count_;
}

Status Table::Delete(size_t rowid) {
  if (rowid >= live_.size() || !live_[rowid]) {
    return Status::NotFound("row already deleted or out of range");
  }
  const Value* r = row(rowid);
  for (const auto& index : indexes_) {
    index->Erase(r[static_cast<size_t>(index->column())], rowid);
  }
  live_[rowid] = false;
  --live_count_;
  if (txn_ != nullptr) txn_->LogDelete(this, rowid);
  return Status::OK();
}

Status Table::SetColumn(size_t rowid, int column, Value v) {
  if (rowid >= live_.size() || !live_[rowid]) {
    return Status::NotFound("row deleted or out of range");
  }
  if (interner_ != nullptr) interner_->InternInPlace(&v);
  Value& cell = mutable_row(rowid)[static_cast<size_t>(column)];
  if (txn_ != nullptr) {
    txn_->LogUpdate(this, rowid, column, cell, v);
  }
  for (const auto& index : indexes_) {
    if (index->column() == column) {
      index->Erase(cell, rowid);
      index->Insert(v, rowid);
    }
  }
  cell = std::move(v);
  return Status::OK();
}

void Table::Clear() {
  slab_.clear();
  live_.clear();
  live_count_ = 0;
  for (const auto& index : indexes_) index->Clear();
}

void Table::UndoInsert(size_t rowid) {
  if (rowid >= live_.size() || !live_[rowid]) return;
  const Value* r = row(rowid);
  for (const auto& index : indexes_) {
    index->Erase(r[static_cast<size_t>(index->column())], rowid);
  }
  live_[rowid] = false;
  --live_count_;
  if (rowid + 1 == live_.size()) {
    slab_.resize(slab_.size() - arity_);
    live_.pop_back();
  }
}

void Table::UndoDelete(size_t rowid) {
  if (rowid >= live_.size() || live_[rowid]) return;
  live_[rowid] = true;
  ++live_count_;
  const Value* r = row(rowid);
  for (const auto& index : indexes_) {
    index->Insert(r[static_cast<size_t>(index->column())], rowid);
  }
}

void Table::UndoSetColumn(size_t rowid, int column, const Value& v) {
  if (rowid >= live_.size()) return;
  Value& cell = mutable_row(rowid)[static_cast<size_t>(column)];
  for (const auto& index : indexes_) {
    if (index->column() == column) {
      index->Erase(cell, rowid);
      index->Insert(v, rowid);
    }
  }
  cell = v;
}

Status Table::CreateIndex(const std::string& index_name, int column) {
  if (FindIndexByName(index_name) != nullptr) {
    return Status::AlreadyExists("index '" + index_name + "' already exists");
  }
  if (column < 0 || static_cast<size_t>(column) >= arity_) {
    return Status::InvalidArgument("bad index column");
  }
  auto index = std::make_unique<HashIndex>(index_name, column);
  for (size_t rowid = 0; rowid < live_.size(); ++rowid) {
    if (live_[rowid]) {
      index->Insert(row(rowid)[static_cast<size_t>(column)], rowid);
    }
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

bool Table::TryDropIndex(std::string_view index_name) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (EqualsIgnoreCase((*it)->name(), index_name)) {
      indexes_.erase(it);
      return true;
    }
  }
  return false;
}

Status Table::DropIndex(const std::string& index_name) {
  if (TryDropIndex(index_name)) return Status::OK();
  return Status::NotFound("index '" + index_name + "' not found");
}

const HashIndex* Table::FindIndexOnColumn(int column) const {
  for (const auto& index : indexes_) {
    if (index->column() == column) return index.get();
  }
  return nullptr;
}

const HashIndex* Table::FindIndexByName(const std::string& name) const {
  for (const auto& index : indexes_) {
    if (EqualsIgnoreCase(index->name(), name)) return index.get();
  }
  return nullptr;
}

}  // namespace xupd::rdb
