#include "xpath/object.h"

namespace xupd::xpath {

std::string StringValueOf(const XmlObject& obj) {
  switch (obj.kind) {
    case XmlObject::Kind::kNull:
      return "";
    case XmlObject::Kind::kElement:
      return obj.element->TextContent();
    case XmlObject::Kind::kAttribute: {
      const xml::Attribute* a = obj.element->FindAttribute(obj.name);
      return a != nullptr ? a->value : "";
    }
    case XmlObject::Kind::kRefEntry: {
      const xml::RefList* r = obj.element->FindRefList(obj.name);
      if (r == nullptr || obj.index >= r->targets.size()) return "";
      return r->targets[obj.index];
    }
    case XmlObject::Kind::kText:
      return obj.text != nullptr ? obj.text->value() : "";
  }
  return "";
}

}  // namespace xupd::xpath
