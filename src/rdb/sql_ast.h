// AST for the SQL dialect. The dialect covers exactly what the paper's
// translation layer emits (§5.2 Fig. 5, §6): CREATE TABLE/INDEX/TRIGGER,
// INSERT (VALUES and SELECT), DELETE, UPDATE, SELECT with multi-way joins,
// IN/NOT IN subqueries, scalar aggregates, WITH CTEs, UNION ALL, ORDER BY,
// plus transaction control (BEGIN/COMMIT/ROLLBACK, SAVEPOINT/ROLLBACK TO/
// RELEASE) and EXPLAIN.
#ifndef XUPD_RDB_SQL_AST_H_
#define XUPD_RDB_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rdb/schema.h"
#include "rdb/value.h"

namespace xupd::rdb::sql {

struct SelectStmt;

struct Expr {
  enum class Kind {
    kLiteral,
    kParam,       ///< ? placeholder, bound at execution time
    kColumn,      ///< [table.]column
    kOldColumn,   ///< OLD.column (trigger bodies)
    kUnary,       ///< NOT x, -x
    kBinary,      ///< comparisons, AND/OR, arithmetic
    kIsNull,      ///< x IS [NOT] NULL
    kInList,      ///< x [NOT] IN (v1, v2, ...)
    kInSubquery,  ///< x [NOT] IN (SELECT ...)
    kAggregate,   ///< MIN/MAX/COUNT/SUM(column | *)
  };
  enum class Op {
    kNone,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
    kNot,
    kNeg,
    kAdd,
    kSub,
    kMul,
    kDiv,
  };
  enum class Agg { kMin, kMax, kCount, kSum };

  Kind kind = Kind::kLiteral;
  Value literal;
  int param_index = 0; ///< kParam: 0-based ordinal of the placeholder.
  std::string table;   ///< kColumn qualifier (may be empty).
  std::string column;  ///< kColumn / kOldColumn / kAggregate argument.
  Op op = Op::kNone;
  std::vector<Expr> children;  ///< kUnary (1), kBinary (2), kIsNull (1),
                               ///< kInList/kInSubquery (operand at [0]).
  std::vector<Expr> in_list;   ///< kInList values.
  std::shared_ptr<SelectStmt> subquery;  ///< kInSubquery (shared: Expr copies).
  bool negated = false;        ///< NOT IN / IS NOT NULL.
  Agg agg = Agg::kCount;
  bool count_star = false;
};

struct SelectItem {
  bool star = false;
  Expr expr;
  std::string alias;
};

struct TableRef {
  std::string table;
  std::string alias;  ///< defaults to table name.
};

struct OrderItem {
  std::string column;  ///< output column name or source column.
  bool desc = false;
};

/// One SELECT core (no set operations).
struct SelectCore {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::optional<Expr> where;
};

/// WITH ctes, core UNION ALL core ... ORDER BY ...
struct SelectStmt {
  struct Cte {
    std::string name;
    std::vector<std::string> columns;  ///< declared column names.
    std::shared_ptr<SelectStmt> query;
  };
  std::vector<Cte> ctes;
  std::vector<SelectCore> cores;
  std::vector<OrderItem> order_by;
};

struct CreateTableStmt {
  std::string name;
  std::vector<ColumnDef> columns;
};

struct CreateIndexStmt {
  std::string name;
  std::string table;
  std::string column;
};

struct Statement;

enum class TriggerGranularity { kRow, kStatement };

struct CreateTriggerStmt {
  std::string name;
  std::string table;  ///< AFTER DELETE ON table.
  TriggerGranularity granularity = TriggerGranularity::kRow;
  std::vector<std::shared_ptr<Statement>> body;
};

struct DropStmt {
  enum class What { kTable, kIndex, kTrigger };
  What what = What::kTable;
  std::string name;
  std::string table;  ///< DROP INDEX name ON table.
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;        ///< empty = all, in order.
  std::vector<std::vector<Expr>> rows;     ///< VALUES rows.
  std::shared_ptr<SelectStmt> select;      ///< INSERT ... SELECT.
};

struct DeleteStmt {
  std::string table;
  std::optional<Expr> where;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, Expr>> sets;
  std::optional<Expr> where;
};

struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kCreateIndex,
    kCreateTrigger,
    kDrop,
    kInsert,
    kDelete,
    kUpdate,
    kBegin,      ///< BEGIN [TRANSACTION|WORK] — opens a txn / savepoint scope.
    kCommit,     ///< COMMIT [TRANSACTION|WORK].
    kRollback,   ///< ROLLBACK [TRANSACTION|WORK] [TO [SAVEPOINT] name].
    kSavepoint,  ///< SAVEPOINT name — a named nested scope.
    kRelease,    ///< RELEASE [SAVEPOINT] name.
    kExplain,    ///< EXPLAIN [ANALYZE] <stmt> — plans (ANALYZE: executes).
    kCheckIntegrity,  ///< CHECK INTEGRITY — online scrub, returns violations.
    kShow,       ///< SHOW METRICS/HEALTH/SLOW/EVENTS — observability views.
    kSet,        ///< SET <name> [=] <int> — session knob (STATEMENT_TIMEOUT).
  };
  /// kShow: which observability view to return.
  enum class ShowWhat {
    kMetrics,  ///< SHOW METRICS — counters, stats fields, histogram summary.
    kHealth,   ///< SHOW HEALTH — Database::health() as rows.
    kSlow,     ///< SHOW SLOW [STATEMENTS] — the slow-statement log.
    kEvents,   ///< SHOW EVENTS — the structured trace ring as JSON rows.
    kTableStats,  ///< SHOW TABLE STATS — per-table/per-index access stats.
    kTrace,    ///< SHOW TRACE — the event ring as Chrome trace-event JSON.
  };
  Kind kind = Kind::kSelect;
  /// Number of ? placeholders in the statement text; values must be bound
  /// positionally (left to right) at execution time.
  int param_count = 0;
  SelectStmt select;
  CreateTableStmt create_table;
  CreateIndexStmt create_index;
  CreateTriggerStmt create_trigger;
  DropStmt drop;
  InsertStmt insert;
  DeleteStmt del;
  UpdateStmt update;
  /// kSavepoint / kRelease / kRollback: savepoint name (empty = plain
  /// ROLLBACK of the innermost scope).
  std::string txn_name;
  /// kExplain: the statement being explained (shared: Statement copies).
  std::shared_ptr<Statement> explain;
  /// kExplain: EXPLAIN ANALYZE — execute the statement and annotate the
  /// plan with per-operator actual rows / loops / time.
  bool explain_analyze = false;
  /// kShow: which observability view.
  ShowWhat show = ShowWhat::kMetrics;
  /// kSet: knob name (uppercased by the executor's lookup) and its integer
  /// value. SET STATEMENT_TIMEOUT <microseconds> (0 clears).
  std::string set_name;
  int64_t set_value = 0;
};

}  // namespace xupd::rdb::sql

#endif  // XUPD_RDB_SQL_AST_H_
