#include "xml/dtd.h"

#include <cctype>
#include <set>

#include "common/str_util.h"

namespace xupd::xml {

namespace {

/// Character-level cursor over DTD text with line tracking for errors.
class DtdCursor {
 public:
  explicit DtdCursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char PeekAt(size_t off) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }
  void Advance() {
    if (!AtEnd()) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_).substr(0, word.size()) == word) {
      for (size_t i = 0; i < word.size(); ++i) Advance();
      return true;
    }
    return false;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }
  std::string ReadName() {
    std::string name;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
          c == '.' || c == ':') {
        name += c;
        Advance();
      } else {
        break;
      }
    }
    return name;
  }
  int line() const { return line_; }

  Status Error(const std::string& msg) const {
    return Status::ParseError("DTD line " + std::to_string(line_) + ": " + msg);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

Quant ReadQuant(DtdCursor* cur) {
  if (cur->Consume('?')) return Quant::kOptional;
  if (cur->Consume('*')) return Quant::kStar;
  if (cur->Consume('+')) return Quant::kPlus;
  return Quant::kOne;
}

// Forward decl: cp := Name quant? | '(' choice-or-seq ')' quant?
Status ParseCp(DtdCursor* cur, ContentParticle* out);

Status ParseGroup(DtdCursor* cur, ContentParticle* out) {
  // Called after '('. Parses (cp (',' cp)*) or (cp ('|' cp)*) up to ')'.
  std::vector<ContentParticle> items;
  char sep = '\0';
  while (true) {
    cur->SkipWhitespace();
    ContentParticle item;
    XUPD_RETURN_IF_ERROR(ParseCp(cur, &item));
    items.push_back(std::move(item));
    cur->SkipWhitespace();
    if (cur->Consume(')')) break;
    char c = cur->Peek();
    if (c != ',' && c != '|') {
      return cur->Error("expected ',' '|' or ')' in content model");
    }
    if (sep != '\0' && sep != c) {
      return cur->Error("cannot mix ',' and '|' at the same level");
    }
    sep = c;
    cur->Advance();
  }
  if (items.size() == 1 && sep == '\0') {
    *out = std::move(items[0]);
    // A group around a single particle may still carry its own quantifier,
    // e.g. (a)* — handled by caller reading quant after ')'.
    return Status::OK();
  }
  out->kind = (sep == '|') ? ContentParticle::Kind::kChoice
                           : ContentParticle::Kind::kSeq;
  out->children = std::move(items);
  return Status::OK();
}

Status ParseCp(DtdCursor* cur, ContentParticle* out) {
  cur->SkipWhitespace();
  if (cur->Consume('(')) {
    ContentParticle group;
    XUPD_RETURN_IF_ERROR(ParseGroup(cur, &group));
    Quant q = ReadQuant(cur);
    if (q != Quant::kOne) {
      // Combining quantifiers: wrap when the inner particle already has one.
      if (group.quant != Quant::kOne) {
        ContentParticle wrapper;
        wrapper.kind = ContentParticle::Kind::kSeq;
        wrapper.quant = q;
        wrapper.children.push_back(std::move(group));
        *out = std::move(wrapper);
        return Status::OK();
      }
      group.quant = q;
    }
    *out = std::move(group);
    return Status::OK();
  }
  std::string name = cur->ReadName();
  if (name.empty()) return cur->Error("expected element name in content model");
  out->kind = ContentParticle::Kind::kName;
  out->name = std::move(name);
  out->quant = ReadQuant(cur);
  return Status::OK();
}

Status ParseElementDecl(DtdCursor* cur, Dtd* dtd) {
  cur->SkipWhitespace();
  ElementDecl decl;
  decl.name = cur->ReadName();
  if (decl.name.empty()) return cur->Error("expected element name");
  cur->SkipWhitespace();
  if (cur->ConsumeWord("EMPTY")) {
    decl.type = ContentType::kEmpty;
  } else if (cur->ConsumeWord("ANY")) {
    decl.type = ContentType::kAny;
  } else if (cur->Peek() == '(') {
    cur->Advance();
    cur->SkipWhitespace();
    if (cur->ConsumeWord("#PCDATA")) {
      // (#PCDATA) or (#PCDATA | a | b)*
      std::vector<std::string> names;
      cur->SkipWhitespace();
      while (cur->Consume('|')) {
        cur->SkipWhitespace();
        std::string n = cur->ReadName();
        if (n.empty()) return cur->Error("expected name in mixed content");
        names.push_back(std::move(n));
        cur->SkipWhitespace();
      }
      if (!cur->Consume(')')) return cur->Error("expected ')' after #PCDATA");
      ReadQuant(cur);  // optional trailing '*'
      if (names.empty()) {
        decl.type = ContentType::kPcdataOnly;
      } else {
        decl.type = ContentType::kMixed;
        decl.mixed_names = std::move(names);
      }
    } else {
      decl.type = ContentType::kChildren;
      ContentParticle group;
      XUPD_RETURN_IF_ERROR(ParseGroup(cur, &group));
      Quant q = ReadQuant(cur);
      if (q != Quant::kOne) {
        if (group.quant != Quant::kOne) {
          ContentParticle wrapper;
          wrapper.kind = ContentParticle::Kind::kSeq;
          wrapper.quant = q;
          wrapper.children.push_back(std::move(group));
          group = std::move(wrapper);
        } else {
          group.quant = q;
        }
      }
      decl.model = std::move(group);
    }
  } else {
    return cur->Error("expected content model for <!ELEMENT " + decl.name + ">");
  }
  cur->SkipWhitespace();
  if (!cur->Consume('>')) return cur->Error("expected '>' to close <!ELEMENT>");
  dtd->AddElement(std::move(decl));
  return Status::OK();
}

Status ParseAttType(DtdCursor* cur, AttrDecl* decl) {
  cur->SkipWhitespace();
  if (cur->ConsumeWord("CDATA")) {
    decl->type = AttrType::kCdata;
  } else if (cur->ConsumeWord("IDREFS")) {
    decl->type = AttrType::kIdrefs;
  } else if (cur->ConsumeWord("IDREF")) {
    decl->type = AttrType::kIdref;
  } else if (cur->ConsumeWord("ID")) {
    decl->type = AttrType::kId;
  } else if (cur->ConsumeWord("NMTOKENS") || cur->ConsumeWord("NMTOKEN")) {
    decl->type = AttrType::kNmtoken;
  } else if (cur->Consume('(')) {
    decl->type = AttrType::kEnumerated;
    while (true) {
      cur->SkipWhitespace();
      std::string v = cur->ReadName();
      if (v.empty()) return cur->Error("expected enumeration value");
      decl->enum_values.push_back(std::move(v));
      cur->SkipWhitespace();
      if (cur->Consume(')')) break;
      if (!cur->Consume('|')) return cur->Error("expected '|' or ')'");
    }
  } else {
    return cur->Error("unsupported attribute type");
  }
  return Status::OK();
}

Status ParseQuotedValue(DtdCursor* cur, std::string* out) {
  char quote = cur->Peek();
  if (quote != '"' && quote != '\'') return cur->Error("expected quoted value");
  cur->Advance();
  out->clear();
  while (!cur->AtEnd() && cur->Peek() != quote) {
    *out += cur->Peek();
    cur->Advance();
  }
  if (!cur->Consume(quote)) return cur->Error("unterminated quoted value");
  return Status::OK();
}

Status ParseAttlistDecl(DtdCursor* cur, Dtd* dtd) {
  cur->SkipWhitespace();
  std::string element = cur->ReadName();
  if (element.empty()) return cur->Error("expected element name in <!ATTLIST>");
  while (true) {
    cur->SkipWhitespace();
    if (cur->Consume('>')) break;
    AttrDecl decl;
    decl.element = element;
    decl.name = cur->ReadName();
    if (decl.name.empty()) return cur->Error("expected attribute name");
    XUPD_RETURN_IF_ERROR(ParseAttType(cur, &decl));
    cur->SkipWhitespace();
    if (cur->ConsumeWord("#REQUIRED")) {
      decl.mode = AttrDefaultMode::kRequired;
    } else if (cur->ConsumeWord("#IMPLIED")) {
      decl.mode = AttrDefaultMode::kImplied;
    } else if (cur->ConsumeWord("#FIXED")) {
      decl.mode = AttrDefaultMode::kFixed;
      cur->SkipWhitespace();
      XUPD_RETURN_IF_ERROR(ParseQuotedValue(cur, &decl.default_value));
    } else {
      decl.mode = AttrDefaultMode::kDefault;
      XUPD_RETURN_IF_ERROR(ParseQuotedValue(cur, &decl.default_value));
    }
    dtd->AddAttribute(std::move(decl));
  }
  return Status::OK();
}

// Recursively collects child occurrences from a content particle.
// `repeated_ctx` / `optional_ctx` carry the context implied by enclosing
// groups (e.g. everything under a starred group is repeated+optional).
void CollectOccurrences(const ContentParticle& p, bool repeated_ctx,
                        bool optional_ctx,
                        std::vector<ChildOccurrence>* out) {
  bool self_rep = p.quant == Quant::kStar || p.quant == Quant::kPlus;
  bool self_opt = p.quant == Quant::kStar || p.quant == Quant::kOptional;
  bool repeated = repeated_ctx || self_rep;
  bool optional = optional_ctx || self_opt;
  if (p.kind == ContentParticle::Kind::kName) {
    for (ChildOccurrence& occ : *out) {
      if (occ.name == p.name) {
        // Appears more than once in the model: definitely repeated.
        occ.repeated = true;
        return;
      }
    }
    out->push_back(ChildOccurrence{p.name, repeated, optional});
    return;
  }
  bool choice = p.kind == ContentParticle::Kind::kChoice;
  for (const ContentParticle& c : p.children) {
    // A choice branch is optional (a sibling branch may be taken instead).
    CollectOccurrences(c, repeated, optional || choice, out);
  }
}

}  // namespace

Result<Dtd> Dtd::Parse(std::string_view text) {
  Dtd dtd;
  DtdCursor cur(text);
  while (true) {
    cur.SkipWhitespace();
    if (cur.AtEnd()) break;
    if (cur.ConsumeWord("<!--")) {
      while (!cur.AtEnd() && !cur.ConsumeWord("-->")) cur.Advance();
      continue;
    }
    if (cur.ConsumeWord("<!ELEMENT")) {
      XUPD_RETURN_IF_ERROR(ParseElementDecl(&cur, &dtd));
    } else if (cur.ConsumeWord("<!ATTLIST")) {
      XUPD_RETURN_IF_ERROR(ParseAttlistDecl(&cur, &dtd));
    } else {
      return cur.Error("expected <!ELEMENT>, <!ATTLIST> or comment");
    }
  }
  if (dtd.elements().empty()) {
    return Status::ParseError("DTD contains no element declarations");
  }
  return dtd;
}

const ElementDecl* Dtd::FindElement(std::string_view name) const {
  auto it = element_index_.find(name);
  return it == element_index_.end() ? nullptr : &elements_[it->second];
}

const AttrDecl* Dtd::FindAttribute(std::string_view element,
                                   std::string_view attr) const {
  for (const AttrDecl& a : attributes_) {
    if (a.element == element && a.name == attr) return &a;
  }
  return nullptr;
}

std::vector<const AttrDecl*> Dtd::AttributesOf(std::string_view element) const {
  std::vector<const AttrDecl*> out;
  for (const AttrDecl& a : attributes_) {
    if (a.element == element) out.push_back(&a);
  }
  return out;
}

std::string Dtd::RootName() const {
  std::set<std::string> referenced;
  for (const ElementDecl& e : elements_) {
    for (const ChildOccurrence& c : ChildElements(e.name)) {
      referenced.insert(c.name);
    }
    for (const std::string& m : e.mixed_names) referenced.insert(m);
  }
  for (const ElementDecl& e : elements_) {
    if (referenced.find(e.name) == referenced.end()) return e.name;
  }
  return elements_.empty() ? "" : elements_.front().name;
}

std::vector<ChildOccurrence> Dtd::ChildElements(std::string_view element) const {
  std::vector<ChildOccurrence> out;
  const ElementDecl* decl = FindElement(element);
  if (decl == nullptr) return out;
  if (decl->type == ContentType::kChildren) {
    CollectOccurrences(decl->model, /*repeated_ctx=*/false,
                       /*optional_ctx=*/false, &out);
  } else if (decl->type == ContentType::kMixed) {
    for (const std::string& n : decl->mixed_names) {
      out.push_back(ChildOccurrence{n, /*repeated=*/true, /*optional=*/true});
    }
  }
  return out;
}

bool Dtd::IsPcdataOnly(std::string_view element) const {
  const ElementDecl* decl = FindElement(element);
  return decl != nullptr && decl->type == ContentType::kPcdataOnly;
}

void Dtd::AddElement(ElementDecl decl) {
  element_index_[decl.name] = elements_.size();
  elements_.push_back(std::move(decl));
}

void Dtd::AddAttribute(AttrDecl decl) { attributes_.push_back(std::move(decl)); }

}  // namespace xupd::xml
