// Table schemas. SQL identifiers are case-insensitive; lookups normalize.
#ifndef XUPD_RDB_SCHEMA_H_
#define XUPD_RDB_SCHEMA_H_

#include <string>
#include <vector>

#include "common/str_util.h"
#include "rdb/value.h"

namespace xupd::rdb {

enum class ColumnType { kInteger, kVarchar };

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kVarchar;
};

class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t column_count() const { return columns_.size(); }

  /// Case-insensitive column lookup; -1 if absent.
  int ColumnIndex(std::string_view column) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (EqualsIgnoreCase(columns_[i].name, column)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

using Row = std::vector<Value>;

}  // namespace xupd::rdb

#endif  // XUPD_RDB_SCHEMA_H_
