// Tests for the engine's observability surfaces: EXPLAIN ANALYZE output
// shape and row parity, the relation between per-operator actuals and the
// statement-level histogram, SHOW METRICS / SHOW HEALTH / SHOW SLOW /
// SHOW EVENTS, and the slow-statement log.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rdb/database.h"

namespace xupd::rdb {
namespace {

/// A small two-table parent/child database: 10 parents, 3 children each.
void Populate(Database* db) {
  ASSERT_TRUE(db->Execute("CREATE TABLE parent (id INT, v INT)").ok());
  ASSERT_TRUE(db->Execute("CREATE TABLE child (id INT, parentId INT)").ok());
  ASSERT_TRUE(
      db->Execute("CREATE INDEX child_parent ON child (parentId)").ok());
  for (int p = 0; p < 10; ++p) {
    ASSERT_TRUE(db->Execute("INSERT INTO parent VALUES (" +
                            std::to_string(p) + ", " + std::to_string(p * 10) +
                            ")")
                    .ok());
    for (int c = 0; c < 3; ++c) {
      ASSERT_TRUE(db->Execute("INSERT INTO child VALUES (" +
                              std::to_string(100 + p * 3 + c) + ", " +
                              std::to_string(p) + ")")
                      .ok());
    }
  }
}

std::vector<std::string> PlanLines(const ResultSet& rs) {
  std::vector<std::string> lines;
  for (const Row& row : rs.rows) lines.push_back(row[0].ToString());
  return lines;
}

/// Value of "key=<float>" in `line`, or -1 if absent.
double ParseField(const std::string& line, const std::string& key) {
  size_t pos = line.find(key + "=");
  if (pos == std::string::npos) return -1;
  return std::stod(line.substr(pos + key.size() + 1));
}

int64_t MetricValue(const ResultSet& metrics, const std::string& key) {
  for (const Row& row : metrics.rows) {
    if (row[0].ToString() == key) return row[1].AsInt();
  }
  return -1;
}

const char kJoin[] =
    "SELECT child.id FROM parent, child WHERE child.parentId = parent.id";

TEST(ExplainAnalyzeTest, AnnotatesEveryOperatorAndSummarizes) {
  Database db;
  Populate(&db);
  auto rs = db.ExecuteQuery(std::string("EXPLAIN ANALYZE ") + kJoin);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  std::vector<std::string> lines = PlanLines(*rs);
  ASSERT_GE(lines.size(), 3u);  // Project + two access nodes + summary

  // The root and every access node are annotated (structural grouping
  // lines like NestedLoopJoin carry no actuals of their own).
  size_t annotated = 0;
  for (const std::string& line : lines) {
    if (line.rfind("Execution:", 0) == 0) continue;
    const bool access = line.find("Scan ") != std::string::npos ||
                        line.find("IndexProbe ") != std::string::npos;
    if (!access && line.find("Project") == std::string::npos) continue;
    EXPECT_NE(line.find("actual rows="), std::string::npos) << line;
    EXPECT_NE(line.find("time_us="), std::string::npos) << line;
    if (access) EXPECT_NE(line.find("loops="), std::string::npos) << line;
    ++annotated;
  }
  EXPECT_GE(annotated, 3u);
  // The summary line is last.
  EXPECT_EQ(lines.back().rfind("Execution: rows=", 0), 0u) << lines.back();
}

TEST(ExplainAnalyzeTest, ActualRowsMatchThePlainQuery) {
  Database db;
  Populate(&db);
  auto plain = db.ExecuteQuery(kJoin);
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->rows.size(), 30u);

  auto rs = db.ExecuteQuery(std::string("EXPLAIN ANALYZE ") + kJoin);
  ASSERT_TRUE(rs.ok());
  std::vector<std::string> lines = PlanLines(*rs);
  EXPECT_EQ(ParseField(lines.back(), "rows"), 30.0) << lines.back();
  // The root operator saw the same rows the plain query returned.
  EXPECT_NE(lines.front().find("actual rows=30"), std::string::npos)
      << lines.front();
}

TEST(ExplainAnalyzeTest, OperatorTimesNestInsideTheStatementHistogram) {
  Database db;
  Populate(&db);
  Histogram* stmt_hist = db.metrics().GetHistogram("stmt.explain");
  stmt_hist->Reset();

  auto rs = db.ExecuteQuery(std::string("EXPLAIN ANALYZE ") + kJoin);
  ASSERT_TRUE(rs.ok());
  std::vector<std::string> lines = PlanLines(*rs);
  const double exec_us = ParseField(lines.back(), "time_us");
  ASSERT_GT(exec_us, 0.0);

  // Every per-operator actual is contained in the execution total (operator
  // times are inclusive down the tree, so each is bounded by the root).
  // Clock-read granularity gets a small absolute allowance.
  size_t timed = 0;
  for (const std::string& line : lines) {
    if (line.rfind("Execution:", 0) == 0) continue;
    double op_us = ParseField(line, "time_us");
    if (op_us < 0) continue;  // structural line without actuals
    EXPECT_LE(op_us, exec_us + 5.0) << line;
    ++timed;
  }
  EXPECT_GE(timed, 3u);

  // The statement-level histogram recorded exactly this statement, and its
  // sample covers the execution time (plus parse/plan) without being wildly
  // larger — generous tolerance, this is a containment check, not a timing
  // assertion.
  ASSERT_EQ(stmt_hist->count(), 1u);
  const double stmt_us = static_cast<double>(stmt_hist->sum()) / 1e3;
  EXPECT_LE(exec_us, stmt_us);  // the statement span contains the execution
  EXPECT_LE(stmt_us, exec_us * 100.0 + 50000.0);
}

TEST(ExplainAnalyzeTest, DmlIsActuallyExecuted) {
  Database db;
  Populate(&db);
  auto rs =
      db.ExecuteQuery("EXPLAIN ANALYZE DELETE FROM child WHERE parentId = 3");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  std::vector<std::string> lines = PlanLines(*rs);
  EXPECT_EQ(ParseField(lines.back(), "rows"), 3.0) << lines.back();

  auto left = db.ExecuteQuery("SELECT COUNT(*) FROM child");
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->rows[0][0].AsInt(), 27);
  EXPECT_EQ(db.stats().explain_analyzes, 1u);
}

TEST(ExplainAnalyzeTest, PlainExplainDoesNotExecute) {
  Database db;
  Populate(&db);
  auto rs = db.ExecuteQuery("EXPLAIN DELETE FROM child WHERE parentId = 3");
  ASSERT_TRUE(rs.ok());
  // No actuals annotated, nothing deleted.
  for (const std::string& line : PlanLines(*rs)) {
    EXPECT_EQ(line.find("actual rows="), std::string::npos) << line;
  }
  auto left = db.ExecuteQuery("SELECT COUNT(*) FROM child");
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->rows[0][0].AsInt(), 30);
}

TEST(ShowTest, MetricsExposeStatsCountersAndHistograms) {
  Database db;
  Populate(&db);
  ASSERT_TRUE(db.ExecuteQuery(kJoin).ok());
  auto metrics = db.ExecuteQuery("SHOW METRICS");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GT(MetricValue(*metrics, "stats.statements"), 0);
  EXPECT_GT(MetricValue(*metrics, "stats.rows_inserted"), 0);
  EXPECT_GT(MetricValue(*metrics, "stmt.select.count"), 0);
  EXPECT_GT(MetricValue(*metrics, "stmt.select.p50_ns"), 0);
  EXPECT_GT(MetricValue(*metrics, "stmt.insert.count"), 0);
  EXPECT_GT(MetricValue(*metrics, "db.exec_ns"), 0);
  // Every statement kind has a histogram slot, populated or not.
  EXPECT_GE(MetricValue(*metrics, "stmt.delete.count"), 0);
  EXPECT_GE(MetricValue(*metrics, "stmt.ddl.count"), 0);
}

TEST(ShowTest, StatementKindsLandInTheirOwnHistogram) {
  Database db;
  Populate(&db);
  const uint64_t inserts_before =
      db.metrics().GetHistogram("stmt.insert")->count();
  ASSERT_TRUE(db.Execute("INSERT INTO parent VALUES (99, 990)").ok());
  ASSERT_TRUE(db.Execute("DELETE FROM parent WHERE id = 99").ok());
  EXPECT_EQ(db.metrics().GetHistogram("stmt.insert")->count(),
            inserts_before + 1);
  EXPECT_EQ(db.metrics().GetHistogram("stmt.delete")->count(), 1u);
}

TEST(ShowTest, HealthReportsTheDegradationSurface) {
  Database db;
  auto health = db.ExecuteQuery("SHOW HEALTH");
  ASSERT_TRUE(health.ok());
  bool saw_read_only = false;
  bool saw_durability = false;
  for (const Row& row : health->rows) {
    if (row[0].ToString() == "read_only") {
      saw_read_only = true;
      EXPECT_EQ(row[1].ToString(), "0");
    }
    if (row[0].ToString() == "durability_open") {
      saw_durability = true;
      EXPECT_EQ(row[1].ToString(), "0");  // in-memory database
    }
  }
  EXPECT_TRUE(saw_read_only);
  EXPECT_TRUE(saw_durability);
}

TEST(ShowTest, EventsRecordStatementSpans) {
  Database db;
  Populate(&db);
  auto events = db.ExecuteQuery("SHOW EVENTS");
  ASSERT_TRUE(events.ok());
  ASSERT_FALSE(events->rows.empty());
  const std::string first = events->rows[0][0].ToString();
  EXPECT_NE(first.find("\"kind\":\"statement\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"duration_ns\":"), std::string::npos) << first;
}

TEST(ShowTest, TableStatsCountAccessesPerTableAndIndex) {
  Database db;
  Populate(&db);
  // The join scans parent and probes child_parent once per parent row.
  ASSERT_TRUE(db.ExecuteQuery(kJoin).ok());
  ASSERT_TRUE(db.Execute("UPDATE parent SET v = v + 1 WHERE id = 3").ok());
  ASSERT_TRUE(db.Execute("DELETE FROM child WHERE parentId = 9").ok());

  auto stats = db.ExecuteQuery("SHOW TABLE STATS");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(MetricValue(*stats, "table.parent.scans"), 0);
  EXPECT_GT(MetricValue(*stats, "table.parent.rows_read"), 0);
  EXPECT_EQ(MetricValue(*stats, "table.parent.rows_inserted"), 10);
  EXPECT_EQ(MetricValue(*stats, "table.parent.rows_updated"), 1);
  EXPECT_EQ(MetricValue(*stats, "table.child.rows_inserted"), 30);
  EXPECT_EQ(MetricValue(*stats, "table.child.rows_deleted"), 3);
  EXPECT_EQ(MetricValue(*stats, "table.child.live_rows"), 27);
  // The join drove the secondary index: 10 probes (one per parent row), all
  // hits; the DELETE may add more.
  EXPECT_GE(MetricValue(*stats, "index.child.child_parent.probes"), 10);
  EXPECT_GE(MetricValue(*stats, "index.child.child_parent.hits"), 10);
  EXPECT_LE(MetricValue(*stats, "index.child.child_parent.hits"),
            MetricValue(*stats, "index.child.child_parent.probes"));
  // Version-buffer columns exist even when nothing is parked right now.
  EXPECT_GE(MetricValue(*stats, "table.parent.version_rows"), 0);
  EXPECT_GE(MetricValue(*stats, "table.parent.version_bytes"), 0);
}

TEST(ShowTest, TraceReturnsChromeTraceJson) {
  Database db;
  Populate(&db);
  ASSERT_TRUE(db.ExecuteQuery(kJoin).ok());
  auto trace = db.ExecuteQuery("SHOW TRACE");
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->columns.size(), 1u);
  ASSERT_EQ(trace->rows.size(), 1u);
  const std::string json = trace->rows[0][0].ToString();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 64);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  // Statement spans carry their causal identity into the export.
  EXPECT_NE(json.find("\"name\":\"statement\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
}

TEST(ShowTest, ParserRejectsIncompleteShowTable) {
  Database db;
  auto rs = db.ExecuteQuery("SHOW TABLE");
  EXPECT_FALSE(rs.ok());
}

TEST(SlowLogTest, ThresholdZeroCapturesStatementsWithPlans) {
  Database db;
  Populate(&db);
  db.set_slow_statement_threshold_us(0);
  ASSERT_TRUE(db.ExecuteQuery(kJoin).ok());
  ASSERT_FALSE(db.slow_statements().empty());
  const Database::SlowStatement& slow = db.slow_statements().back();
  EXPECT_EQ(slow.sql, kJoin);
  EXPECT_GT(slow.duration_ns, 0u);
  EXPECT_NE(slow.plan.find("Project"), std::string::npos) << slow.plan;
  EXPECT_GT(db.stats().slow_statements, 0u);

  auto shown = db.ExecuteQuery("SHOW SLOW");
  ASSERT_TRUE(shown.ok());
  EXPECT_FALSE(shown->rows.empty());

  db.clear_slow_statements();
  EXPECT_TRUE(db.slow_statements().empty());
}

TEST(SlowLogTest, DisabledByDefault) {
  Database db;
  Populate(&db);
  ASSERT_TRUE(db.ExecuteQuery(kJoin).ok());
  EXPECT_TRUE(db.slow_statements().empty());
  EXPECT_EQ(db.stats().slow_statements, 0u);
}

}  // namespace
}  // namespace xupd::rdb
