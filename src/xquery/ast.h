// AST for the paper's XQuery extensions (§4.1):
//
//   FOR $b IN path, ...  LET $v := path, ...  WHERE pred, ...
//   UPDATE $b { subOp {, subOp}* }
//
//   subOp := DELETE $child
//          | RENAME $child TO name
//          | INSERT content [BEFORE | AFTER $child]
//          | REPLACE $child WITH content
//          | FOR $b' IN path, ... WHERE ... UPDATE $b' { ... }
//
// Plain FLWR queries (RETURN expr) are also represented so the same parser
// serves the Sorted-Outer-Union query path (§5.2, Example 6/7).
#ifndef XUPD_XQUERY_AST_H_
#define XUPD_XQUERY_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "xpath/ast.h"

namespace xupd::xquery {

/// Content in INSERT / REPLACE clauses.
struct ContentExpr {
  enum class Kind {
    kNone,
    kXmlFragment,   ///< <tag ...>...</tag> captured verbatim.
    kString,        ///< "PCDATA" (or an ID when inserted into an IDREFS).
    kNewAttribute,  ///< new_attribute(name, "value")
    kNewRef,        ///< new_ref(label, "target")
    kPath,          ///< $var or path — copy of an existing object.
  };
  Kind kind = Kind::kNone;
  std::string text;  ///< fragment text / string literal / constructor value.
  std::string name;  ///< new_attribute / new_ref name.
  xpath::PathExpr path;  ///< kPath.
};

struct UpdateOp;

/// One sub-operation inside UPDATE { ... }.
struct SubOp {
  enum class Kind { kDelete, kRename, kInsert, kReplace, kNestedUpdate };
  enum class Position { kAppend, kBefore, kAfter };

  Kind kind = Kind::kDelete;
  xpath::PathExpr child;        ///< DELETE/RENAME/REPLACE target; INSERT
                                ///< BEFORE/AFTER reference binding.
  std::string rename_to;        ///< RENAME ... TO name.
  ContentExpr content;          ///< INSERT / REPLACE content.
  Position position = Position::kAppend;  ///< INSERT placement.
  std::unique_ptr<UpdateOp> nested;       ///< kNestedUpdate.
};

struct ForClause {
  std::string variable;
  xpath::PathExpr path;
};

struct LetClause {
  std::string variable;
  xpath::PathExpr path;
};

/// UPDATE $target { subops } — possibly nested, in which case it carries its
/// own FOR/WHERE clauses.
struct UpdateOp {
  std::vector<ForClause> for_clauses;      ///< nested updates only.
  std::vector<xpath::Predicate> where;     ///< nested updates only.
  xpath::PathExpr target;                  ///< the $binding being updated.
  std::vector<SubOp> sub_ops;
};

/// A complete statement: update (one or more UPDATE ops) or query (RETURN).
struct Statement {
  std::vector<ForClause> for_clauses;
  std::vector<LetClause> let_clauses;
  std::vector<xpath::Predicate> where;
  std::vector<UpdateOp> updates;                ///< update statement.
  std::optional<xpath::PathExpr> return_path;   ///< FLWR query.

  bool is_update() const { return !updates.empty(); }
};

}  // namespace xupd::xquery

#endif  // XUPD_XQUERY_AST_H_
