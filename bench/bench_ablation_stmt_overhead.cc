// Ablation: per-SQL-statement overhead. Quantifies why the tuple-based
// insert (one INSERT per tuple) loses to the table-based insert (one
// INSERT...SELECT per relation) as subtrees grow — §6 "issuing multiple
// separate SQL statements incurs overhead".
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "rdb/database.h"

using namespace xupd;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 20000;
  std::printf("# Ablation: per-statement overhead (%d rows)\n", n);

  // Path A: one INSERT statement per row.
  {
    rdb::Database db;
    (void)db.Execute("CREATE TABLE t (id INTEGER, payload VARCHAR)");
    Stopwatch sw;
    for (int i = 0; i < n; ++i) {
      Status s = db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                            ", 'payload-" + std::to_string(i) + "')");
      if (!s.ok()) std::abort();
    }
    double per_stmt = sw.ElapsedSeconds();
    std::printf("%-28s %12.6f sec (%8.2f us/row)\n", "insert-per-statement",
                per_stmt, 1e6 * per_stmt / n);
  }

  // Path B: set-oriented INSERT ... SELECT (one statement).
  {
    rdb::Database db;
    (void)db.Execute("CREATE TABLE t (id INTEGER, payload VARCHAR)");
    (void)db.Execute("CREATE TABLE src (id INTEGER, payload VARCHAR)");
    rdb::Table* src = db.FindTable("src");
    for (int i = 0; i < n; ++i) {
      (void)db.InsertDirect(src,
                            {rdb::Value::Int(i),
                             rdb::Value::Str("payload-" + std::to_string(i))});
    }
    Stopwatch sw;
    Status s = db.Execute("INSERT INTO t SELECT id, payload FROM src");
    if (!s.ok()) std::abort();
    double set_oriented = sw.ElapsedSeconds();
    std::printf("%-28s %12.6f sec (%8.2f us/row)\n", "insert-select-en-masse",
                set_oriented, 1e6 * set_oriented / n);
  }

  // Path C: the direct bulk API (no SQL at all), as a floor.
  {
    rdb::Database db;
    (void)db.Execute("CREATE TABLE t (id INTEGER, payload VARCHAR)");
    rdb::Table* t = db.FindTable("t");
    Stopwatch sw;
    for (int i = 0; i < n; ++i) {
      (void)db.InsertDirect(t,
                            {rdb::Value::Int(i),
                             rdb::Value::Str("payload-" + std::to_string(i))});
    }
    double direct = sw.ElapsedSeconds();
    std::printf("%-28s %12.6f sec (%8.2f us/row)\n", "direct-bulk-api", direct,
                1e6 * direct / n);
  }
  return 0;
}
