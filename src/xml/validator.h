// DTD validation — an implementation of the paper's §8 future-work item
// ("typechecking updates"): validate a document, or revalidate just the
// elements touched by an update.
#ifndef XUPD_XML_VALIDATOR_H_
#define XUPD_XML_VALIDATOR_H_

#include "common/status.h"
#include "xml/document.h"
#include "xml/dtd.h"

namespace xupd::xml {

struct ValidateOptions {
  /// Reject attributes that are not declared in an <!ATTLIST>.
  bool strict_attributes = false;
  /// Check that every IDREF target resolves to an existing ID. The paper's
  /// delete semantics allow dangling references (§4.2.1), so this defaults
  /// to off; turn on for full DTD conformance checks.
  bool check_idref_targets = false;
};

/// Validates the whole document against `dtd`: element content models,
/// required attributes, ID uniqueness, enumerated values.
Status Validate(const Document& doc, const Dtd& dtd,
                const ValidateOptions& options = {});

/// Validates just `element` (content model + attributes), without recursing
/// into descendants. Used to typecheck the local effect of an update.
Status ValidateElementShallow(const Element& element, const Dtd& dtd,
                              const ValidateOptions& options = {});

}  // namespace xupd::xml

#endif  // XUPD_XML_VALIDATOR_H_
