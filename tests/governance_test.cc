// Resource-governance tests: statement deadlines, cooperative cancellation,
// memory budgets, and background-thread watchdogs.
//
// Tentpole acceptance: a statement killed by an expired deadline, a
// CancelToken, an injected cancellation at ANY operator pull, or an
// exceeded memory budget must return kDeadlineExceeded / kCancelled /
// kResourceExhausted with ALL partial effects rolled back — element
// tables, hash indexes, the ASR, and the WAL land exactly on the
// pre-operation state, proven by the every-k-th-pull cancellation matrix
// and the budget-exhaustion matrix over the paper's fig. 6/10 strategies
// (mirroring the fault-injection matrix of fault_injection_test.cc).
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/store.h"
#include "rdb/database.h"
#include "rdb/governance.h"
#include "rdb/vfs.h"
#include "workload/synthetic.h"

namespace xupd {
namespace {

using engine::DeleteStrategy;
using engine::InsertStrategy;
using engine::RelationalStore;
using rdb::FaultVfs;
using rdb::MemoryAccountant;
using FaultKind = rdb::FaultVfs::FaultKind;

// ---------------------------------------------------------------------------
// Helpers (mirrors fault_injection_test.cc — each test binary is
// self-contained)

/// A scratch data directory, removed (with its contents) on destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/xupd_gov_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path_ = p == nullptr ? "/tmp/xupd_gov_fallback" : p;
  }
  ~TempDir() {
    DIR* d = ::opendir(path_.c_str());
    if (d != nullptr) {
      while (dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        std::remove((path_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Renders the full durable state of a database as one comparable string.
std::string DumpDurableState(const rdb::Database& db) {
  std::string out = "next_id=" + std::to_string(db.next_id()) + "\n";
  for (const std::string& name : db.TableNames()) {
    const rdb::Table* t = db.FindTable(name);
    if (t == nullptr || !t->durable()) continue;
    out += "table " + t->schema().name() + " (";
    for (const auto& c : t->schema().columns()) out += c.name + ",";
    out += ")\n";
    for (size_t rowid = 0; rowid < t->capacity(); ++rowid) {
      out += t->is_live(rowid) ? "  live " : "  dead ";
      for (const rdb::Value& v : t->row_span(rowid)) out += v.ToString() + "|";
      out += "\n";
    }
    for (const auto& index : t->indexes()) {
      out += "  index " + index->name() + " col " +
             std::to_string(index->column()) + " size " +
             std::to_string(index->size()) + "\n";
    }
  }
  return out;
}

/// The cancellation matrix checks EVERY pull, so a small doc suffices; the
/// budget/deadline tests only poll at every 64th pull and need enough rows
/// per statement for several polls to land after memory has grown, so they
/// pass a larger scaling factor.
workload::GeneratedDoc MakeDoc(int scaling_factor = 6) {
  workload::SyntheticSpec spec;
  spec.scaling_factor = scaling_factor;
  spec.depth = 3;
  spec.fanout = 2;
  auto gen = workload::GenerateFixedSynthetic(spec, 42);
  EXPECT_TRUE(gen.ok());
  return std::move(gen).value();
}

std::unique_ptr<RelationalStore> MakeStore(const workload::GeneratedDoc& gen,
                                           const std::string& dir,
                                           DeleteStrategy del,
                                           InsertStrategy ins) {
  RelationalStore::Options options;
  options.delete_strategy = del;
  options.insert_strategy = ins;
  options.build_asr =
      del == DeleteStrategy::kAsr || ins == InsertStrategy::kAsr;
  options.durability = true;
  options.data_dir = dir;
  options.sync_mode = rdb::SyncMode::kCommit;
  auto store = RelationalStore::Create(gen.dtd, options);
  EXPECT_TRUE(store.ok()) << store.status();
  if (!store.ok()) return nullptr;
  if (!store.value()->recovered()) {
    Status s = store.value()->Load(*gen.doc);
    EXPECT_TRUE(s.ok()) << s;
  }
  return std::move(store).value();
}

using EngineOp = std::function<Status(RelationalStore*)>;

struct EngineCase {
  const char* name;
  DeleteStrategy del;
  InsertStrategy ins;
  EngineOp op;
};

/// The paper's fig. 6 (bulk delete) and fig. 10 (bulk copy) operations
/// across every delete/insert translation strategy.
std::vector<EngineCase> EngineCases() {
  auto bulk_delete = [](RelationalStore* s) {
    return s->DeleteWhere("n2", "v2 > 500000");
  };
  auto bulk_copy = [](RelationalStore* s) {
    return s->CopySubtreesWhere("n2", "v2 < 300000", s->root_id());
  };
  return {
      {"fig6-delete-tuple-trigger", DeleteStrategy::kPerTupleTrigger,
       InsertStrategy::kTable, bulk_delete},
      {"fig6-delete-stmt-trigger", DeleteStrategy::kPerStatementTrigger,
       InsertStrategy::kTable, bulk_delete},
      {"fig6-delete-cascade", DeleteStrategy::kCascade, InsertStrategy::kTable,
       bulk_delete},
      {"fig6-delete-asr", DeleteStrategy::kAsr, InsertStrategy::kTable,
       bulk_delete},
      {"fig10-copy-tuple", DeleteStrategy::kCascade, InsertStrategy::kTuple,
       bulk_copy},
      {"fig10-copy-table", DeleteStrategy::kCascade, InsertStrategy::kTable,
       bulk_copy},
      {"fig10-copy-asr", DeleteStrategy::kAsr, InsertStrategy::kAsr,
       bulk_copy},
  };
}

/// Asserts both scrub layers pass with governance hooks disarmed.
void ExpectScrubClean(RelationalStore* store) {
  rdb::Database* db = store->db();
  std::vector<std::string> rv = db->VerifyIntegrity();
  EXPECT_TRUE(rv.empty()) << rv[0];
  std::vector<std::string> ev = store->VerifyStore();
  EXPECT_TRUE(ev.empty()) << ev[0];
  auto scrub = db->ExecuteQuery("CHECK INTEGRITY");
  ASSERT_TRUE(scrub.ok()) << scrub.status();
}

// ---------------------------------------------------------------------------
// Statement deadlines

TEST(StatementTimeoutTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  rdb::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
  // The simulated per-statement latency dwarfs the timeout: SpinFor exits
  // early at the deadline and the admission check reports the expiry.
  db.set_statement_latency_us(50000);
  db.set_statement_timeout_us(100);
  Status s = db.Execute("INSERT INTO t VALUES (1)");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s;
  EXPECT_NE(s.message().find("deadline"), std::string::npos) << s;
  // Nothing landed.
  db.set_statement_timeout_us(0);
  db.set_statement_latency_us(0);
  auto rows = db.ExecuteQuery("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->rows[0][0].AsInt(), 0);
  EXPECT_GE(db.metrics().Counter("stmt.deadline_exceeded")
                ->load(std::memory_order_relaxed),
            1u);
}

TEST(StatementTimeoutTest, PerCallOverloadOverridesGlobalTimeout) {
  rdb::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
  db.set_statement_latency_us(50000);
  // No global timeout: the per-call deadline alone kills the statement.
  ASSERT_EQ(db.statement_timeout_us(), 0);
  EXPECT_EQ(db.Execute("INSERT INTO t VALUES (1)", 100).code(),
            StatusCode::kDeadlineExceeded);
  // A generous per-call deadline lets the statement through.
  EXPECT_TRUE(db.Execute("INSERT INTO t VALUES (2)", 60000000).ok());
  db.set_statement_latency_us(0);
  auto rows = db.ExecuteQuery("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0].AsInt(), 1);
}

TEST(StatementTimeoutTest, MidExecutionExpiryRollsBackPartialEffects) {
  rdb::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
  ASSERT_TRUE(db.Begin().ok());
  auto ins = db.Prepare("INSERT INTO t VALUES (?)");
  ASSERT_TRUE(ins.ok());
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(
        db.ExecutePrepared(ins.value(), {rdb::Value::Int(i)}).ok());
  }
  ASSERT_TRUE(db.Commit().ok());
  // A deadline short enough to expire inside the delete's pull loop but
  // long enough to pass admission (the absolute instant is checked at
  // every 64th pull; 50000 rows give hundreds of polls and comfortably
  // more than 250us of execution).
  Status s = db.Execute("DELETE FROM t WHERE id >= 0", 250);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s;
  // The partial delete rolled back: every row is still there.
  auto rows = db.ExecuteQuery("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->rows[0][0].AsInt(), 50000);
  EXPECT_TRUE(db.VerifyIntegrity().empty());
}

TEST(SetStatementTimeoutSqlTest, SetsClampsAndClears) {
  rdb::Database db;
  ASSERT_TRUE(db.Execute("SET STATEMENT_TIMEOUT 2500").ok());
  EXPECT_EQ(db.statement_timeout_us(), 2500);
  ASSERT_TRUE(db.Execute("SET statement_timeout = 800").ok());
  EXPECT_EQ(db.statement_timeout_us(), 800);
  // Negative clamps to 0 (= disabled).
  ASSERT_TRUE(db.Execute("SET STATEMENT_TIMEOUT -5").ok());
  EXPECT_EQ(db.statement_timeout_us(), 0);
  ASSERT_TRUE(db.Execute("SET STATEMENT_TIMEOUT 0").ok());
  EXPECT_EQ(db.statement_timeout_us(), 0);
  Status unknown = db.Execute("SET NO_SUCH_KNOB 1");
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.message().find("STATEMENT_TIMEOUT"), std::string::npos)
      << unknown;
  EXPECT_FALSE(db.Execute("SET STATEMENT_TIMEOUT abc").ok());
  // SET is governance-exempt: it still runs with an absurd timeout armed.
  ASSERT_TRUE(db.Execute("SET STATEMENT_TIMEOUT 1").ok());
  db.set_statement_latency_us(50000);
  EXPECT_TRUE(db.Execute("SET STATEMENT_TIMEOUT 0").ok());
  db.set_statement_latency_us(0);
  EXPECT_EQ(db.statement_timeout_us(), 0);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation

TEST(CancelTokenTest, CancelFromAnotherThreadKillsARunningStatement) {
  rdb::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE a (x INTEGER)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE b (y INTEGER)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE c (z INTEGER)").ok());
  ASSERT_TRUE(db.Begin().ok());
  for (int t = 0; t < 3; ++t) {
    const char* names[] = {"a", "b", "c"};
    auto ins = db.Prepare(std::string("INSERT INTO ") + names[t] +
                          " VALUES (?)");
    ASSERT_TRUE(ins.ok());
    for (int i = 0; i < 120; ++i) {
      ASSERT_TRUE(db.ExecutePrepared(ins.value(), {rdb::Value::Int(i)}).ok());
    }
  }
  ASSERT_TRUE(db.Commit().ok());
  // 120^3 join pulls take far longer than the canceller's 2ms nap.
  std::thread canceller([&db] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    db.cancel_token().Cancel();
  });
  auto joined = db.ExecuteQuery("SELECT COUNT(*) FROM a, b, c");
  canceller.join();
  ASSERT_FALSE(joined.ok());
  EXPECT_EQ(joined.status().code(), StatusCode::kCancelled) << joined.status();
  EXPECT_GE(db.metrics().Counter("stmt.cancelled")
                ->load(std::memory_order_relaxed),
            1u);
  // The token latches until Reset: new statements are refused at admission.
  EXPECT_EQ(db.ExecuteQuery("SELECT COUNT(*) FROM a").status().code(),
            StatusCode::kCancelled);
  db.cancel_token().Reset();
  auto rows = db.ExecuteQuery("SELECT COUNT(*) FROM a");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->rows[0][0].AsInt(), 120);
}

// ---------------------------------------------------------------------------
// Tentpole acceptance: cancellation injected at every k-th operator pull of
// the fig. 6/10 operations, across all delete/insert strategies. Every
// injection must land on the rolled-back pre-operation state with both
// scrub layers clean.

TEST(CancellationInjectionMatrixTest, EveryKthPullRollsBackCleanly) {
  workload::GeneratedDoc gen = MakeDoc();
  for (const EngineCase& ec : EngineCases()) {
    SCOPED_TRACE(ec.name);
    // Clean run: pre/post states and the op's total pull count (the huge
    // armed countdown doubles as a pull counter; it never reaches zero).
    std::string pre;
    std::string post;
    int64_t total_pulls = 0;
    {
      TempDir dir;
      auto store = MakeStore(gen, dir.path(), ec.del, ec.ins);
      ASSERT_NE(store, nullptr);
      rdb::Database* db = store->db();
      pre = DumpDurableState(*db);
      const int64_t armed = int64_t{1} << 40;
      db->ArmCancelAtPull(armed);
      Status s = ec.op(store.get());
      total_pulls = armed - db->cancel_at_pull_remaining();
      db->DisarmCancelAtPull();
      ASSERT_TRUE(s.ok()) << s;
      post = DumpDurableState(*db);
      EXPECT_TRUE(store->VerifyStore().empty());
    }
    ASSERT_GT(total_pulls, 0);
    const int64_t step = std::max<int64_t>(1, total_pulls / 12);
    for (int64_t k = 1; k <= total_pulls; k += step) {
      SCOPED_TRACE("cancel injected at pull " + std::to_string(k));
      TempDir dir;
      auto store = MakeStore(gen, dir.path(), ec.del, ec.ins);
      ASSERT_NE(store, nullptr);
      rdb::Database* db = store->db();
      ASSERT_EQ(DumpDurableState(*db), pre);
      db->ArmCancelAtPull(k);
      Status s = ec.op(store.get());
      db->DisarmCancelAtPull();
      ASSERT_FALSE(s.ok()) << "pull " << k << " of " << total_pulls
                           << " did not inject";
      EXPECT_EQ(s.code(), StatusCode::kCancelled) << s;
      EXPECT_FALSE(s.message().empty());
      ASSERT_FALSE(db->in_transaction());
      // ALL partial effects rolled back: element tables, indexes, and the
      // ASR are byte-identical to the pre-op state, and both scrubs pass.
      EXPECT_EQ(DumpDurableState(*db), pre);
      ExpectScrubClean(store.get());
      // The operation re-issues to completion (governance left no residue).
      Status retry = ec.op(store.get());
      ASSERT_TRUE(retry.ok()) << retry;
      EXPECT_EQ(DumpDurableState(*db), post);
      EXPECT_TRUE(store->VerifyStore().empty());
    }
    // WAL proof for one mid-operation injection: recovery of the killed
    // store lands exactly on the pre-op state (no partial unit leaked).
    {
      TempDir dir;
      {
        auto store = MakeStore(gen, dir.path(), ec.del, ec.ins);
        ASSERT_NE(store, nullptr);
        store->db()->ArmCancelAtPull(std::max<int64_t>(1, total_pulls / 2));
        Status s = ec.op(store.get());
        store->db()->DisarmCancelAtPull();
        ASSERT_FALSE(s.ok());
      }
      auto reopened = MakeStore(gen, dir.path(), ec.del, ec.ins);
      ASSERT_NE(reopened, nullptr);
      EXPECT_TRUE(reopened->recovered());
      EXPECT_EQ(DumpDurableState(*reopened->db()), pre);
      EXPECT_TRUE(reopened->VerifyStore().empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Memory budgets

TEST(BudgetExhaustionMatrixTest, HardBudgetKillsAndRollsBackEveryStrategy) {
  // Large doc: every op mutates thousands of rows, so the every-64th-pull
  // poll fires many times after the statement's WAL pending bytes (and, for
  // the copies, fresh slabs and interned strings) have grown past the
  // frozen budget.
  workload::GeneratedDoc gen = MakeDoc(400);
  for (const EngineCase& ec : EngineCases()) {
    SCOPED_TRACE(ec.name);
    TempDir dir;
    auto store = MakeStore(gen, dir.path(), ec.del, ec.ins);
    ASSERT_NE(store, nullptr);
    rdb::Database* db = store->db();
    const std::string pre = DumpDurableState(*db);
    // Freeze the hard budget at current usage: the op's first growth
    // (undo records, version buffers, WAL pending) trips the next poll.
    MemoryAccountant& mem = db->memory_accountant();
    mem.set_hard_budget(mem.total_used());
    Status s = ec.op(store.get());
    mem.set_hard_budget(0);
    ASSERT_FALSE(s.ok()) << ec.name << " never exceeded its budget";
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
    EXPECT_NE(s.message().find("budget"), std::string::npos) << s;
    ASSERT_FALSE(db->in_transaction());
    EXPECT_EQ(DumpDurableState(*db), pre);
    ExpectScrubClean(store.get());
    // With the budget lifted the same op completes.
    Status retry = ec.op(store.get());
    ASSERT_TRUE(retry.ok()) << retry;
    EXPECT_TRUE(store->VerifyStore().empty());
    EXPECT_GE(db->metrics().Counter("stmt.resource_exhausted")
                  ->load(std::memory_order_relaxed),
              1u);
  }
}

TEST(SoftBudgetTest, ShedsNewStatementsButExemptsDiagnostics) {
  rdb::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER, name VARCHAR)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')").ok());
  MemoryAccountant& mem = db.memory_accountant();
  ASSERT_GT(mem.total_used(), 0u);
  mem.set_soft_budget(1);  // far below current usage: shed everything new
  Status shed = db.Execute("INSERT INTO t VALUES (3, 'c')");
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted) << shed;
  EXPECT_NE(shed.message().find("shedding"), std::string::npos) << shed;
  EXPECT_EQ(db.ExecuteQuery("SELECT * FROM t").status().code(),
            StatusCode::kResourceExhausted);
  // Diagnostic / resource-releasing statements stay admitted: this is how
  // an operator sees what is wrong and fixes it.
  EXPECT_TRUE(db.ExecuteQuery("SHOW HEALTH").ok());
  EXPECT_TRUE(db.ExecuteQuery("SHOW METRICS").ok());
  EXPECT_TRUE(db.ExecuteQuery("CHECK INTEGRITY").ok());
  EXPECT_TRUE(db.Execute("SET STATEMENT_TIMEOUT 0").ok());
  EXPECT_GE(
      db.metrics().Counter("stmt.shed")->load(std::memory_order_relaxed), 2u);
  // SHOW HEALTH reports the pressure.
  auto health = db.ExecuteQuery("SHOW HEALTH");
  ASSERT_TRUE(health.ok());
  bool over_soft_reported = false;
  for (const auto& row : health->rows) {
    if (row[0].AsString() == "mem_over_soft" && row[1].AsString() == "1") {
      over_soft_reported = true;
    }
  }
  EXPECT_TRUE(over_soft_reported);
  // Lifting the budget resumes admission; in-flight data was never lost.
  mem.set_soft_budget(0);
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (3, 'c')").ok());
  auto rows = db.ExecuteQuery("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0].AsInt(), 3);
}

TEST(WalPendingWatermarkTest, OversizedCommitUnitFailsCleanly) {
  TempDir dir;
  rdb::Database db;
  ASSERT_TRUE(db.Open(dir.path()).ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER, name VARCHAR)").ok());
  MemoryAccountant& mem = db.memory_accountant();
  mem.set_wal_pending_limit(2048);
  ASSERT_TRUE(db.Begin().ok());
  auto ins = db.Prepare("INSERT INTO t VALUES (?, 'x-pad-x-pad-x-pad')");
  ASSERT_TRUE(ins.ok());
  Status s = Status::OK();
  for (int i = 0; i < 10000 && s.ok(); ++i) {
    s = db.ExecutePrepared(ins.value(), {rdb::Value::Int(i)});
  }
  // The unit's staged bytes crossed the watermark: a clean failure instead
  // of unbounded growth.
  ASSERT_FALSE(s.ok()) << "watermark never tripped";
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
  EXPECT_NE(s.message().find("watermark"), std::string::npos) << s;
  ASSERT_TRUE(db.Rollback().ok());
  // TruncatePending released the staged bytes (charge mirrors the buffer).
  EXPECT_EQ(mem.used(MemoryAccountant::kWalPending), 0u);
  EXPECT_TRUE(db.VerifyIntegrity().empty());
  auto rows = db.ExecuteQuery("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0].AsInt(), 0);
  // Without the watermark the same transaction lands.
  mem.set_wal_pending_limit(0);
  ASSERT_TRUE(db.Begin().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.ExecutePrepared(ins.value(), {rdb::Value::Int(i)}).ok());
  }
  ASSERT_TRUE(db.Commit().ok());
  EXPECT_EQ(mem.used(MemoryAccountant::kWalPending), 0u);
}

TEST(MemoryAccountingTest, GaugesTrackTheDominantConsumers) {
  rdb::Database db;
  MemoryAccountant& mem = db.memory_accountant();
  const uint64_t before = mem.total_used();
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER, name VARCHAR)").ok());
  ASSERT_TRUE(db.Begin().ok());
  auto ins = db.Prepare("INSERT INTO t VALUES (?, 'some-interned-name')");
  ASSERT_TRUE(ins.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db.ExecutePrepared(ins.value(), {rdb::Value::Int(i)}).ok());
  }
  // Mid-transaction: slabs, the interner, and the undo log all carry
  // charges, mirrored into mem.* gauges.
  EXPECT_GT(mem.used(MemoryAccountant::kTableSlabs), 0u);
  EXPECT_GT(mem.used(MemoryAccountant::kInterner), 0u);
  EXPECT_GT(mem.used(MemoryAccountant::kUndoLog), 0u);
  EXPECT_GT(mem.total_used(), before);
  EXPECT_GT(db.metrics().Gauge("mem.total")->load(std::memory_order_relaxed),
            0);
  EXPECT_GT(db.metrics()
                .Gauge("mem.table_slabs")
                ->load(std::memory_order_relaxed),
            0);
  const size_t undo_mid = mem.used(MemoryAccountant::kUndoLog);
  ASSERT_TRUE(db.Commit().ok());
  // Commit retires the undo scope, but the log's chunks are pooled for reuse
  // (txn.h): the charge reflects retained capacity, so it must not grow.
  EXPECT_LE(mem.used(MemoryAccountant::kUndoLog), undo_mid);
}

// ---------------------------------------------------------------------------
// Engine-op deadline propagation (engine/store.cc)

TEST(EngineOpTimeoutTest, OperationDeadlineKillsAndRollsBack) {
  // Large doc: the trigger bulk delete mutates thousands of rows, taking
  // far longer than the 50us operation deadline.
  workload::GeneratedDoc gen = MakeDoc(400);
  TempDir dir;
  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kPerTupleTrigger;
  options.durability = true;
  options.data_dir = dir.path();
  options.op_timeout_us = 50;  // far below a multi-statement bulk delete
  auto store = RelationalStore::Create(gen.dtd, options);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store.value()->Load(*gen.doc).ok());
  rdb::Database* db = store.value()->db();
  const std::string pre = DumpDurableState(*db);
  Status s = store.value()->DeleteWhere("n2", "v2 > 500000");
  ASSERT_FALSE(s.ok()) << "50us bulk delete should not finish";
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s;
  ASSERT_FALSE(db->in_transaction());
  EXPECT_EQ(DumpDurableState(*db), pre);
  ExpectScrubClean(store.value().get());
  // The scope disarmed the deadline: unrelated statements run free.
  EXPECT_EQ(db->operation_deadline_ns(), 0u);
  auto rows = db->ExecuteQuery("SELECT COUNT(*) FROM n2");
  EXPECT_TRUE(rows.ok()) << rows.status();
}

// ---------------------------------------------------------------------------
// Background-thread watchdogs

TEST(FlusherWatchdogTest, BrokenWalStopsHeartbeatsAndReportsStall) {
  TempDir dir;
  FaultVfs fault(rdb::Vfs::Default());
  rdb::DurabilityOptions opts;
  opts.sync_mode = rdb::SyncMode::kBatched;
  opts.group_commit_window_us = 500;
  opts.vfs = &fault;
  rdb::Database db;
  ASSERT_TRUE(db.Open(dir.path(), opts).ok());
  db.set_watchdog_stall_windows(2);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  // A healthy flusher stamps its heartbeat every window; poll for it
  // (scheduling under sanitizers can briefly delay the thread past the
  // staleness budget right after startup).
  bool healthy = false;
  for (int i = 0; i < 2000 && !healthy; ++i) {
    healthy = !db.health().flusher_stalled;
    if (!healthy) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(healthy);
  // Baseline AFTER the healthy poll: a slow-scheduled startup may already
  // have burned (and re-armed) one stall episode.
  const uint64_t base = db.metrics()
                            .Counter("watchdog.flusher_stalls")
                            ->load(std::memory_order_relaxed);
  // Break the WAL: appends and fsyncs fail, the flusher stops stamping its
  // heartbeat, and the watchdog trips after 2 windows (1ms).
  fault.ArmFault(FaultKind::kEio, 1, "wal");
  (void)db.Execute("INSERT INTO t VALUES (2)");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  rdb::Database::Health h = db.health();
  EXPECT_TRUE(h.flusher_stalled);
  EXPECT_TRUE(h.degraded());
  // The stall-episode latch: the counter fires once, not per health() call.
  const uint64_t stalls = db.metrics()
                              .Counter("watchdog.flusher_stalls")
                              ->load(std::memory_order_relaxed);
  EXPECT_EQ(stalls, base + 1);
  EXPECT_TRUE(db.health().flusher_stalled);
  EXPECT_EQ(db.metrics()
                .Counter("watchdog.flusher_stalls")
                ->load(std::memory_order_relaxed),
            stalls);
  // The episode is visible in the trace ring.
  bool traced = false;
  for (const std::string& line : db.events().ToJsonLines()) {
    if (line.find("flusher_stall") != std::string::npos) traced = true;
  }
  EXPECT_TRUE(traced);
  // SHOW HEALTH surfaces it (SHOW is admission-exempt).
  auto health = db.ExecuteQuery("SHOW HEALTH");
  ASSERT_TRUE(health.ok());
  bool reported = false;
  for (const auto& row : health->rows) {
    if (row[0].AsString() == "flusher_stalled" && row[1].AsString() == "1") {
      reported = true;
    }
  }
  EXPECT_TRUE(reported);
  fault.ClearFault();
}

TEST(CheckpointWatchdogTest, SlowSnapshotTripsAndClearsAfterJoin) {
  TempDir dir;
  rdb::Database db;
  ASSERT_TRUE(db.Open(dir.path()).ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER, name VARCHAR)").ok());
  ASSERT_TRUE(db.Begin().ok());
  auto ins = db.Prepare("INSERT INTO t VALUES (?, 'payload-payload')");
  ASSERT_TRUE(ins.ok());
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(db.ExecutePrepared(ins.value(), {rdb::Value::Int(i)}).ok());
  }
  ASSERT_TRUE(db.Commit().ok());
  // A 1us window on a 20k-row snapshot: while the write is in flight every
  // health() poll past the first microsecond sees a stall.
  db.set_checkpoint_watchdog_window_us(1);
  db.set_watchdog_stall_windows(1);
  ASSERT_TRUE(db.CheckpointBackground().ok());
  bool saw_stall = false;
  for (int i = 0; i < 200000 && !saw_stall; ++i) {
    saw_stall = db.health().checkpoint_stalled;
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_GE(db.metrics()
                .Counter("watchdog.checkpoint_stalls")
                ->load(std::memory_order_relaxed),
            1u);
  bool traced = false;
  for (const std::string& line : db.events().ToJsonLines()) {
    if (line.find("checkpoint_stall") != std::string::npos) traced = true;
  }
  EXPECT_TRUE(traced);
  ASSERT_TRUE(db.CheckpointWait().ok());
  // Joined: finished-but-unjoined or joined checkpoints are not stalls.
  EXPECT_FALSE(db.health().checkpoint_stalled);
}

// ---------------------------------------------------------------------------
// Reader-session admission and governance

TEST(ReaderAdmissionTest, ExhaustedSlotsReturnUnavailableWithRetryHint) {
  rdb::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
  std::vector<std::unique_ptr<rdb::ReaderSession>> sessions;
  for (int i = 0; i < rdb::EpochManager::kMaxReaders; ++i) {
    auto s = db.OpenReaderSession();
    ASSERT_TRUE(s.ok()) << "slot " << i << ": " << s.status();
    sessions.push_back(std::move(s).value());
  }
  auto overflow = db.OpenReaderSession();
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kUnavailable)
      << overflow.status();
  EXPECT_NE(overflow.status().message().find("retry"), std::string::npos)
      << overflow.status();
  // Releasing one slot re-admits: the clean retry contract.
  sessions.pop_back();
  EXPECT_TRUE(db.OpenReaderSession().ok());
}

TEST(ReaderGovernanceTest, SessionsHonorTimeoutAndCancelToken) {
  rdb::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE a (x INTEGER)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE b (y INTEGER)").ok());
  ASSERT_TRUE(db.Begin().ok());
  auto ia = db.Prepare("INSERT INTO a VALUES (?)");
  auto ib = db.Prepare("INSERT INTO b VALUES (?)");
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  for (int i = 0; i < 700; ++i) {
    ASSERT_TRUE(db.ExecutePrepared(ia.value(), {rdb::Value::Int(i)}).ok());
    ASSERT_TRUE(db.ExecutePrepared(ib.value(), {rdb::Value::Int(i)}).ok());
  }
  ASSERT_TRUE(db.Commit().ok());
  auto session = db.OpenReaderSession();
  ASSERT_TRUE(session.ok());
  // Deadline: a 700x700 join cannot finish in 200us.
  db.set_statement_timeout_us(200);
  auto timed_out = session.value()->ExecuteQuery("SELECT COUNT(*) FROM a, b");
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded)
      << timed_out.status();
  db.set_statement_timeout_us(0);
  // Cancel token: shared with reader sessions.
  db.cancel_token().Cancel();
  auto cancelled = session.value()->ExecuteQuery("SELECT COUNT(*) FROM a, b");
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled)
      << cancelled.status();
  db.cancel_token().Reset();
  auto rows = session.value()->ExecuteQuery("SELECT COUNT(*) FROM a");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->rows[0][0].AsInt(), 700);
}

// ---------------------------------------------------------------------------
// Slow-statement log: governance kills carry their cause

TEST(SlowLogCauseTest, KilledStatementsAreLoggedWithCauseAndDelta) {
  rdb::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
  // The slow log's duration threshold stays DISABLED: governance kills are
  // captured regardless.
  ASSERT_LT(db.slow_statement_threshold_us(), 0.0);
  db.set_statement_latency_us(20000);
  db.set_statement_timeout_us(100);
  ASSERT_EQ(db.Execute("INSERT INTO t VALUES (1)").code(),
            StatusCode::kDeadlineExceeded);
  db.set_statement_timeout_us(0);
  db.set_statement_latency_us(0);
  ASSERT_FALSE(db.slow_statements().empty());
  const rdb::Database::SlowStatement& killed = db.slow_statements().back();
  EXPECT_EQ(killed.cause, "deadline_exceeded");
  EXPECT_EQ(killed.sql, "INSERT INTO t VALUES (1)");
  // Cancelled statements record their cause too.
  db.cancel_token().Cancel();
  ASSERT_EQ(db.Execute("INSERT INTO t VALUES (2)").code(),
            StatusCode::kCancelled);
  db.cancel_token().Reset();
  EXPECT_EQ(db.slow_statements().back().cause, "cancelled");
  // SHOW SLOW exposes the cause column.
  auto slow = db.ExecuteQuery("SHOW SLOW");
  ASSERT_TRUE(slow.ok());
  ASSERT_GE(slow->columns.size(), 2u);
  EXPECT_EQ(slow->columns[1], "cause");
  bool saw_deadline = false;
  bool saw_cancelled = false;
  for (const auto& row : slow->rows) {
    if (row[1].AsString() == "deadline_exceeded") saw_deadline = true;
    if (row[1].AsString() == "cancelled") saw_cancelled = true;
  }
  EXPECT_TRUE(saw_deadline);
  EXPECT_TRUE(saw_cancelled);
  // Both counters surfaced.
  EXPECT_GE(db.metrics().Counter("stmt.deadline_exceeded")
                ->load(std::memory_order_relaxed),
            1u);
  EXPECT_GE(db.metrics().Counter("stmt.cancelled")
                ->load(std::memory_order_relaxed),
            1u);
}

// ---------------------------------------------------------------------------
// TryHeal: bounded, interruptible, observable backoff

TEST(TryHealBackoffTest, BackoffIsBoundedInterruptibleAndObservable) {
  TempDir dir;
  FaultVfs fault(rdb::Vfs::Default());
  rdb::DurabilityOptions opts;
  opts.sync_mode = rdb::SyncMode::kCommit;
  opts.vfs = &fault;
  rdb::Database db;
  ASSERT_TRUE(db.Open(dir.path(), opts).ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
  fault.ArmFault(FaultKind::kEio, 1, "wal");
  ASSERT_FALSE(db.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(db.read_only());
  // Bounded: with the fault persisting, 3 attempts back off 2ms + 4ms and
  // return promptly (the per-attempt cap is kMaxHealBackoffMs).
  const auto t0 = std::chrono::steady_clock::now();
  Status failed = db.TryHeal(3);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable) << failed;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  const uint64_t attempts = db.stats().heal_attempts;
  EXPECT_GE(attempts, 3u);
  EXPECT_GE(db.metrics().Counter("db.heal_attempts")
                ->load(std::memory_order_relaxed),
            3u);
  // Observable: each backoff is a kGovernance trace span.
  bool traced = false;
  for (const std::string& line : db.events().ToJsonLines()) {
    if (line.find("heal_backoff") != std::string::npos) traced = true;
  }
  EXPECT_TRUE(traced);
  // Interruptible: a cancelled token aborts the backoff with kCancelled.
  db.cancel_token().Cancel();
  Status interrupted = db.TryHeal(5);
  EXPECT_EQ(interrupted.code(), StatusCode::kCancelled) << interrupted;
  db.cancel_token().Reset();
  // And once the fault clears, healing succeeds.
  fault.ClearFault();
  Status healed = db.TryHeal();
  ASSERT_TRUE(healed.ok()) << healed;
  EXPECT_FALSE(db.read_only());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (2)").ok());
}

}  // namespace
}  // namespace xupd
