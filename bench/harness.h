// Shared benchmark harness following the paper's protocol (§7): each point
// is the average of 5 runs with the first run discarded; every run operates
// on a freshly loaded store (loading is not timed).
#ifndef XUPD_BENCH_HARNESS_H_
#define XUPD_BENCH_HARNESS_H_

#include <sys/resource.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/store.h"
#include "workload/synthetic.h"

namespace xupd::bench {

struct HarnessOptions {
  int runs = 5;  ///< total runs; first discarded.
};

/// Percentile summary of an engine latency histogram (samples are
/// nanoseconds; reported in microseconds for bench JSON rows).
struct LatencySummary {
  uint64_t count = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

inline LatencySummary Summarize(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.p50_us = h.Percentile(50) / 1000.0;
  s.p95_us = h.Percentile(95) / 1000.0;
  s.p99_us = h.Percentile(99) / 1000.0;
  s.max_us = static_cast<double>(h.max()) / 1000.0;
  return s;
}

/// Per-point measurement: the paper-protocol average plus percentiles of
/// the counted runs' wall times (a Histogram over per-run ns), so JSON rows
/// can carry median/tail columns instead of a single noise-prone average.
/// Converts to double as the average — the paper-figure series stay as
/// before; new columns read the percentiles explicitly.
struct MeasuredRuns {
  double avg_seconds = 0;
  Histogram run_ns;  ///< one sample per counted run.
  operator double() const { return avg_seconds; }
  double median_seconds() const { return run_ns.Percentile(50) / 1e9; }
  double p99_seconds() const { return run_ns.Percentile(99) / 1e9; }
};

/// Peak resident set size of this process so far, in KiB (ru_maxrss is KiB
/// on Linux). Emitted into bench JSON rows so memory regressions of the
/// storage layer are as visible as time regressions.
inline long PeakRssKb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;
}

/// Common trailing fields for bench JSON rows: the number of concurrently
/// executing worker threads the row measured (1 = the paper's single-
/// threaded protocol; concurrent-reader benches report their fan-out),
/// the Value footprint, and peak RSS. Returns the closing "}" too.
inline std::string JsonTail(int threads = 1) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "\"threads\":%d,\"sizeof_value\":%zu,\"peak_rss_kb\":%ld}",
                threads, sizeof(rdb::Value), PeakRssKb());
  return buf;
}

/// Builds a fresh store with explicit options over `gen` and loads it.
inline std::unique_ptr<engine::RelationalStore> FreshStore(
    const workload::GeneratedDoc& gen,
    const engine::RelationalStore::Options& options) {
  auto store = engine::RelationalStore::Create(gen.dtd, options);
  if (!store.ok()) {
    std::fprintf(stderr, "store create failed: %s\n",
                 store.status().ToString().c_str());
    std::abort();
  }
  Status s = store.value()->Load(*gen.doc);
  if (!s.ok()) {
    std::fprintf(stderr, "store load failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  return std::move(store).value();
}

/// Builds a fresh store of the given strategies over `gen` and loads it.
inline std::unique_ptr<engine::RelationalStore> FreshStore(
    const workload::GeneratedDoc& gen, engine::DeleteStrategy del,
    engine::InsertStrategy ins) {
  engine::RelationalStore::Options options;
  options.delete_strategy = del;
  options.insert_strategy = ins;
  return FreshStore(gen, options);
}

/// Measures `op` on fresh stores built with explicit options: runs+1
/// executions, first discarded, returns the average seconds plus a per-run
/// latency histogram (see MeasuredRuns).
inline MeasuredRuns MeasureOnFreshStores(
    const workload::GeneratedDoc& gen,
    const engine::RelationalStore::Options& store_options,
    const std::function<void(engine::RelationalStore*)>& op,
    const HarnessOptions& options = {}) {
  MeasuredRuns out;
  double total = 0;
  int counted = 0;
  for (int r = 0; r < options.runs; ++r) {
    auto store = FreshStore(gen, store_options);
    Stopwatch sw;
    op(store.get());
    double t = sw.ElapsedSeconds();
    if (r > 0) {
      total += t;
      ++counted;
      out.run_ns.Record(static_cast<uint64_t>(t * 1e9));
    }
  }
  out.avg_seconds = counted > 0 ? total / counted : 0.0;
  return out;
}

/// Measures `op` on fresh stores: runs+1 executions, first discarded,
/// returns the average seconds plus a per-run latency histogram.
inline MeasuredRuns MeasureOnFreshStores(
    const workload::GeneratedDoc& gen, engine::DeleteStrategy del,
    engine::InsertStrategy ins,
    const std::function<void(engine::RelationalStore*)>& op,
    const HarnessOptions& options = {}) {
  engine::RelationalStore::Options store_options;
  store_options.delete_strategy = del;
  store_options.insert_strategy = ins;
  return MeasureOnFreshStores(gen, store_options, op, options);
}

/// Prints one series point in a gnuplot-friendly layout.
inline void PrintHeader(const std::string& title, const std::string& x_name) {
  std::printf("# %s\n", title.c_str());
  std::printf("%-12s %8s %12s\n", "method", x_name.c_str(), "time_sec");
}

inline void PrintPoint(const std::string& method, long x, double seconds) {
  std::printf("%-12s %8ld %12.6f\n", method.c_str(), x, seconds);
}

/// Selects `n` deterministic "random" subtree ids from the given list.
inline std::vector<int64_t> PickRandomIds(const std::vector<int64_t>& ids,
                                          size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> pool = ids;
  std::vector<int64_t> out;
  while (out.size() < n && !pool.empty()) {
    size_t i = rng.Uniform(pool.size());
    out.push_back(pool[i]);
    pool.erase(pool.begin() + static_cast<ptrdiff_t>(i));
  }
  return out;
}

}  // namespace xupd::bench

#endif  // XUPD_BENCH_HARNESS_H_
