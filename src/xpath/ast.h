// AST for the XPath subset used by the paper's update language:
//   document("bio.xml")/db/lab[@ID="baselab"]/name
//   $p/ref(biologist,"smith1")      -- bind a single IDREF entry (§4.2)
//   $lab/@category                  -- bind an attribute as a whole (§4.2)
//   //Order[status="ready" and OrderLine/ItemName="tire"]
//   @biologist->lastname            -- IDREF dereference
//   $lab.index() = 0                -- position function (Example 5)
// Both '/' and '.' are accepted as step separators (the paper uses
// Customer.Order.OrderLine in Example 7 and /db/lab elsewhere).
#ifndef XUPD_XPATH_AST_H_
#define XUPD_XPATH_AST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xupd::xpath {

struct Predicate;

/// One location step.
struct Step {
  enum class Axis {
    kChild,       ///< name or *
    kDescendant,  ///< // name (descendant-or-self)
    kAttribute,   ///< @name or @*
    kRefEntry,    ///< ref(label, "id") / ref(label, *) / ref(*, *)
    kDeref,       ///< -> name : IDREF/attribute value to target element
    kTextNodes,   ///< text() : PCDATA children
  };
  Axis axis = Axis::kChild;
  std::string name;        ///< element/attribute/reflist name; "*" = any.
  std::string ref_target;  ///< kRefEntry only; "*" = any entry.
  std::vector<Predicate> predicates;
};

/// A (possibly relative) path expression.
struct PathExpr {
  enum class Head {
    kDocument,  ///< document("name") ...
    kVariable,  ///< $var ...
    kContext,   ///< relative to the evaluation context object
  };
  Head head = Head::kContext;
  std::string document_name;  ///< kDocument: the (informational) URI.
  std::string variable;       ///< kVariable: variable name without '$'.
  std::vector<Step> steps;

  /// True if the expression ends in `.index()`: the path's value is the
  /// 0-based position of the bound object within its producing sequence.
  bool index_fn = false;
};

/// Boolean predicate grammar: or / and / not / comparison / existence.
struct Predicate {
  enum class Kind { kCompare, kExists, kAnd, kOr, kNot };
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

  Kind kind = Kind::kExists;
  PathExpr path;  ///< kCompare / kExists: the left operand.
  Op op = Op::kEq;
  bool rhs_is_number = false;
  int64_t rhs_number = 0;
  std::string rhs_string;
  std::vector<Predicate> children;  ///< kAnd / kOr (>=2), kNot (1).
};

/// Renders the AST back to (normalized) path syntax; used in diagnostics and
/// parser tests.
std::string ToString(const PathExpr& path);
std::string ToString(const Predicate& pred);

}  // namespace xupd::xpath

#endif  // XUPD_XPATH_AST_H_
