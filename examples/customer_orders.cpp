// Relational-store walkthrough over the §5.1 customer database: shred a
// document into the Shared Inlining schema, run the paper's Examples 8-10
// through the XQuery-to-SQL translator under different strategies, and show
// the statement counts each strategy pays (§6).
#include <cstdio>
#include <string>

#include "engine/store.h"
#include "xml/parser.h"
#include "xml/serializer.h"

using namespace xupd;

static const char kCustomerDtd[] = R"(
<!ELEMENT CustDB (Customer*)>
<!ELEMENT Customer (Name, Address, Order*)>
<!ELEMENT Address (City, State)>
<!ELEMENT Order (Date, Status?, OrderLine*)>
<!ELEMENT OrderLine (ItemName, Qty, comment?)>
<!ELEMENT Name (#PCDATA)> <!ELEMENT City (#PCDATA)> <!ELEMENT State (#PCDATA)>
<!ELEMENT Date (#PCDATA)> <!ELEMENT Status (#PCDATA)>
<!ELEMENT ItemName (#PCDATA)> <!ELEMENT Qty (#PCDATA)>
<!ELEMENT comment (#PCDATA)>
)";

static const char kCustomerXml[] = R"(<CustDB>
  <Customer>
    <Name>John</Name>
    <Address><City>Seattle</City><State>WA</State></Address>
    <Order><Date>2000-05-01</Date><Status>ready</Status>
      <OrderLine><ItemName>tire</ItemName><Qty>4</Qty></OrderLine>
      <OrderLine><ItemName>wrench</ItemName><Qty>1</Qty></OrderLine>
    </Order>
    <Order><Date>2000-06-12</Date><Status>shipped</Status>
      <OrderLine><ItemName>tire</ItemName><Qty>2</Qty></OrderLine>
    </Order>
  </Customer>
  <Customer>
    <Name>Mary</Name>
    <Address><City>Fresno</City><State>CA</State></Address>
    <Order><Date>2000-07-04</Date><Status>ready</Status>
      <OrderLine><ItemName>hammer</ItemName><Qty>1</Qty></OrderLine>
    </Order>
  </Customer>
</CustDB>)";

namespace {

std::unique_ptr<engine::RelationalStore> FreshStore(
    engine::DeleteStrategy del) {
  auto dtd = xml::Dtd::Parse(kCustomerDtd);
  if (!dtd.ok()) std::exit(1);
  engine::RelationalStore::Options options;
  options.delete_strategy = del;
  auto store = engine::RelationalStore::Create(dtd.value(), options);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    std::exit(1);
  }
  auto doc = xml::ParseXml(kCustomerXml);
  if (!doc.ok()) std::exit(1);
  Status s = store.value()->Load(*doc.value().document);
  if (!s.ok()) std::exit(1);
  return std::move(store).value();
}

}  // namespace

int main() {
  {
    auto store = FreshStore(engine::DeleteStrategy::kPerTupleTrigger);
    std::printf("=== Shared Inlining schema (Figure 4 DTD) ===\n");
    for (const auto& t : store->mapping().tables()) {
      std::printf("  table %-10s <- element <%s>%s\n", t.table.c_str(),
                  t.element.c_str(),
                  t.parent_element.empty()
                      ? " (root)"
                      : (" (child of " + t.parent_element + ")").c_str());
    }

    std::printf("\n=== Example 8: suspend ready orders containing tires ===\n");
    Status s = store->ExecuteXQueryUpdate(R"(
        FOR $o IN document("custdb.xml")//Order[Status="ready" and
                                                OrderLine/ItemName="tire"]
        UPDATE $o {
          INSERT <Status>suspended</Status>,
          FOR $i IN $o/OrderLine[ItemName="tire"]
          UPDATE $i { INSERT <comment>recalled</comment> }
        })");
    if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
    auto orders = store->db()->ExecuteQuery(
        "SELECT id, Status FROM Order ORDER BY id");
    std::printf("%s", orders.value().ToString().c_str());
  }

  std::printf("\n=== Example 9: delete customers named John, per strategy ===\n");
  for (auto del :
       {engine::DeleteStrategy::kPerTupleTrigger,
        engine::DeleteStrategy::kPerStatementTrigger,
        engine::DeleteStrategy::kCascade, engine::DeleteStrategy::kAsr}) {
    auto store = FreshStore(del);
    rdb::Stats before = store->stats();
    Status s = store->ExecuteXQueryUpdate(R"(
        FOR $d IN document("custdb.xml"),
            $c IN $d/Customer[Name="John"]
        UPDATE $d { DELETE $c })");
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      continue;
    }
    rdb::Stats delta = store->stats().Delta(before);
    std::printf("  %-10s: %s\n", engine::ToString(del),
                delta.ToString().c_str());
  }

  std::printf("\n=== Example 10: copy Californian customers (copy semantics) ===\n");
  {
    auto store = FreshStore(engine::DeleteStrategy::kPerTupleTrigger);
    Status s = store->ExecuteXQueryUpdate(R"(
        FOR $d IN document("custDB.xml"),
            $source IN $d/Customer[Address/State="CA"]
        UPDATE $d { INSERT $source })");
    if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
    auto rebuilt = store->Reconstruct();
    if (rebuilt.ok()) {
      std::printf("%s\n", xml::Serialize(*rebuilt.value()).c_str());
    }
  }
  return 0;
}
