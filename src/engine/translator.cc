// XQuery-update → SQL translation (§6).
//
// Supported statement shape (covers the paper's Examples 8-10 and the
// benchmark workloads):
//
//   FOR $a IN document(...)/<path to a table-mapped element>[preds],
//       $b IN $a/<path>, ...
//   [WHERE preds]
//   UPDATE $t { DELETE $c | INSERT content [s] | REPLACE $c WITH content |
//               FOR $n IN $t/<path>[preds] [WHERE ...] UPDATE $n { ... } }
//
// Translation approach (per §6.3): all bindings — including those of nested
// sub-updates — are computed against the *input* store first (the paper uses
// one Sorted Outer Union; we issue one SELECT per binding level, which has
// the same bind-before-update semantics); then the sub-operations execute
// sequentially using the configured delete/insert strategies.
//
// Predicates over inlined content become SQL over the owning table's
// columns; predicates over a child table's content become
// `id IN (SELECT parentId FROM child WHERE ...)`. Bound id sets are staged
// in the shared `xupd_idlist` scratch table and referenced as
// `id IN (SELECT id FROM xupd_idlist)` (RelationalStore::IdListPredicate),
// so every statement the translator emits has a constant text and reuses a
// cached plan regardless of which ids are bound.
//
// Documented deviations: inserting "over" an inlined single-occurrence
// element overwrites it (the paper would emit a warning, §6.2); RENAME of a
// table-mapped element is unsupported at the SQL level (the mapping fixes
// table names at schema time).
#include <map>
#include <set>

#include "common/str_util.h"
#include "engine/engine_span.h"
#include "engine/store.h"
#include "xml/parser.h"
#include "xpath/ast.h"
#include "xquery/ast.h"
#include "xquery/parser.h"

namespace xupd::engine {

using shred::InlinedField;
using shred::TableMapping;
using xpath::PathExpr;
using xpath::Predicate;
using xpath::Step;
using xquery::ContentExpr;
using xquery::Statement;
using xquery::SubOp;
using xquery::UpdateOp;

namespace {

/// A variable binding resolved against the relational store.
struct Binding {
  const TableMapping* table = nullptr;  ///< owning table.
  std::vector<int64_t> ids;             ///< bound tuple ids.
  /// For bindings to inlined objects: the element path below the table's
  /// element and (optionally) the attribute name.
  bool inlined = false;
  std::vector<std::string> inlined_path;
  std::string inlined_attr;
};

class Translator {
 public:
  explicit Translator(RelationalStore* store)
      : store_(store), mapping_(&store->mapping()) {}

  Status Execute(const Statement& stmt) {
    if (!stmt.is_update()) {
      return Status::InvalidArgument("statement has no UPDATE clause");
    }
    if (!stmt.let_clauses.empty()) {
      return Status::Unimplemented("LET clauses in relational translation");
    }
    std::map<std::string, Binding> env;
    for (const auto& clause : stmt.for_clauses) {
      XUPD_ASSIGN_OR_RETURN(Binding b, ResolvePath(clause.path, env));
      env[clause.variable] = std::move(b);
    }
    for (const Predicate& pred : stmt.where) {
      XUPD_RETURN_IF_ERROR(ApplyWherePredicate(pred, &env));
    }
    // Bind phase for all updates (including nested) before executing.
    std::vector<PlannedOp> plan;
    for (const UpdateOp& op : stmt.updates) {
      XUPD_RETURN_IF_ERROR(BindUpdate(op, env, &plan));
    }
    for (const PlannedOp& op : plan) {
      XUPD_RETURN_IF_ERROR(ExecuteOp(op));
    }
    return Status::OK();
  }

 private:
  struct PlannedOp {
    SubOp::Kind kind = SubOp::Kind::kDelete;
    Binding target;  ///< the UPDATE target binding.
    Binding child;   ///< operand binding (delete/replace).
    /// Content (resolved at bind time).
    ContentExpr::Kind content_kind = ContentExpr::Kind::kNone;
    std::string content_text;
    std::string content_name;
    std::unique_ptr<xml::Element> content_element;
    Binding content_source;  ///< for INSERT $var copies.
    std::string rename_to;
  };

  // --- path resolution -----------------------------------------------------

  /// Resolves a path to a Binding. Heads: document(...) (from the mapping
  /// root) or $var (from an existing binding).
  Result<Binding> ResolvePath(const PathExpr& path,
                              const std::map<std::string, Binding>& env) {
    Binding current;
    size_t step_index = 0;
    if (path.head == PathExpr::Head::kVariable) {
      auto it = env.find(path.variable);
      if (it == env.end()) {
        return Status::NotFound("unbound variable $" + path.variable);
      }
      current = it->second;
    } else {
      // document(...): start at the mapping root. The first step may name
      // the root element itself.
      current.table = mapping_->root();
      XUPD_ASSIGN_OR_RETURN(current.ids,
                            store_->SelectIds(current.table->element, ""));
      if (!path.steps.empty() &&
          path.steps[0].axis == Step::Axis::kChild &&
          path.steps[0].name == current.table->element) {
        XUPD_RETURN_IF_ERROR(ApplyStepPredicates(path.steps[0], &current));
        step_index = 1;
      }
    }
    for (; step_index < path.steps.size(); ++step_index) {
      const Step& step = path.steps[step_index];
      XUPD_RETURN_IF_ERROR(ApplyStep(step, &current));
    }
    return current;
  }

  Status ApplyStep(const Step& step, Binding* current) {
    if (current->inlined) {
      // Deeper into the inlined region.
      if (step.axis == Step::Axis::kChild) {
        current->inlined_path.push_back(step.name);
        return Status::OK();
      }
      if (step.axis == Step::Axis::kAttribute) {
        current->inlined_attr = step.name;
        return Status::OK();
      }
      return Status::Unimplemented("step inside inlined region");
    }
    switch (step.axis) {
      case Step::Axis::kChild: {
        // Child table?
        for (const TableMapping* child :
             mapping_->ChildTables(current->table->element)) {
          if (child->element == step.name) {
            XUPD_ASSIGN_OR_RETURN(std::string pred,
                                  PredicatesToSql(step.predicates, child));
            XUPD_ASSIGN_OR_RETURN(
                std::string full,
                store_->IdListPredicate("parentId", current->ids));
            if (!pred.empty()) full += " AND (" + pred + ")";
            Binding next;
            next.table = child;
            XUPD_ASSIGN_OR_RETURN(next.ids,
                                  store_->SelectIds(child->element, full));
            *current = std::move(next);
            return Status::OK();
          }
        }
        // Inlined child?
        std::vector<std::string> p{step.name};
        bool known = false;
        for (const InlinedField& f : current->table->fields) {
          if (!f.path.empty() && f.path[0] == step.name) known = true;
        }
        if (known) {
          if (!step.predicates.empty()) {
            return Status::Unimplemented("predicates on inlined elements");
          }
          current->inlined = true;
          current->inlined_path = std::move(p);
          return Status::OK();
        }
        return Status::NotFound("no table or inlined mapping for step '" +
                                step.name + "' under <" +
                                current->table->element + ">");
      }
      case Step::Axis::kDescendant: {
        // Locate the unique table with this element name in the subtree of
        // the current table.
        const TableMapping* found = nullptr;
        for (const TableMapping* t : mapping_->SubtreeTables(current->table)) {
          if (t->element == step.name) {
            if (found != nullptr) {
              return Status::InvalidArgument("ambiguous // step '" +
                                             step.name + "'");
            }
            found = t;
          }
        }
        if (found == nullptr) {
          return Status::NotFound("// step '" + step.name +
                                  "' matches no table");
        }
        XUPD_ASSIGN_OR_RETURN(std::string pred,
                              PredicatesToSql(step.predicates, found));
        // Constrain to descendants of the current ids by walking down the
        // parent chain.
        std::vector<const TableMapping*> chain =
            mapping_->PathFromRoot(found);
        auto it = std::find(chain.begin(), chain.end(), current->table);
        if (it == chain.end()) {
          return Status::Internal("inconsistent table chain");
        }
        chain.erase(chain.begin(), it);
        XUPD_ASSIGN_OR_RETURN(std::string constraint,
                              store_->IdListPredicate("id", current->ids));
        for (size_t i = 1; i < chain.size(); ++i) {
          constraint = "parentId IN (SELECT id FROM " + chain[i - 1]->table +
                       " WHERE " + constraint + ")";
        }
        std::string full = constraint;
        if (!pred.empty()) full += " AND (" + pred + ")";
        Binding next;
        next.table = found;
        XUPD_ASSIGN_OR_RETURN(next.ids, store_->SelectIds(found->element, full));
        *current = std::move(next);
        return Status::OK();
      }
      case Step::Axis::kAttribute: {
        const InlinedField* f =
            mapping_->ResolveInlined(current->table, {}, step.name);
        if (f == nullptr) {
          return Status::NotFound("attribute '" + step.name +
                                  "' is not mapped on <" +
                                  current->table->element + ">");
        }
        current->inlined = true;
        current->inlined_attr = step.name;
        return Status::OK();
      }
      default:
        return Status::Unimplemented(
            "path step kind in relational translation");
    }
  }

  Status ApplyStepPredicates(const Step& step, Binding* current) {
    if (step.predicates.empty()) return Status::OK();
    XUPD_ASSIGN_OR_RETURN(std::string pred,
                          PredicatesToSql(step.predicates, current->table));
    XUPD_ASSIGN_OR_RETURN(std::string full,
                          store_->IdListPredicate("id", current->ids));
    if (!pred.empty()) full += " AND (" + pred + ")";
    XUPD_ASSIGN_OR_RETURN(current->ids,
                          store_->SelectIds(current->table->element, full));
    return Status::OK();
  }

  // --- predicate translation -----------------------------------------------

  Result<std::string> PredicatesToSql(const std::vector<Predicate>& preds,
                                      const TableMapping* tm) {
    std::string out;
    for (const Predicate& p : preds) {
      XUPD_ASSIGN_OR_RETURN(std::string one, PredicateToSql(p, tm));
      if (!out.empty()) out += " AND ";
      out += one;
    }
    return out;
  }

  Result<std::string> PredicateToSql(const Predicate& pred,
                                     const TableMapping* tm) {
    switch (pred.kind) {
      case Predicate::Kind::kAnd:
      case Predicate::Kind::kOr: {
        std::string joiner =
            pred.kind == Predicate::Kind::kAnd ? " AND " : " OR ";
        std::string out = "(";
        for (size_t i = 0; i < pred.children.size(); ++i) {
          if (i > 0) out += joiner;
          XUPD_ASSIGN_OR_RETURN(std::string one,
                                PredicateToSql(pred.children[i], tm));
          out += one;
        }
        out += ")";
        return out;
      }
      case Predicate::Kind::kNot: {
        XUPD_ASSIGN_OR_RETURN(std::string one,
                              PredicateToSql(pred.children[0], tm));
        return "NOT (" + one + ")";
      }
      case Predicate::Kind::kCompare:
      case Predicate::Kind::kExists: {
        const PathExpr& path = pred.path;
        if (path.head != PathExpr::Head::kContext) {
          return Status::Unimplemented(
              "non-relative predicate path in SQL translation");
        }
        std::string op = "=";
        if (pred.kind == Predicate::Kind::kCompare) {
          switch (pred.op) {
            case Predicate::Op::kEq:
              op = "=";
              break;
            case Predicate::Op::kNe:
              op = "<>";
              break;
            case Predicate::Op::kLt:
              op = "<";
              break;
            case Predicate::Op::kLe:
              op = "<=";
              break;
            case Predicate::Op::kGt:
              op = ">";
              break;
            case Predicate::Op::kGe:
              op = ">=";
              break;
          }
        }
        std::string literal = pred.rhs_is_number
                                  ? std::to_string(pred.rhs_number)
                                  : SqlQuote(pred.rhs_string);
        // @attr or element path.
        std::vector<std::string> epath;
        std::string attr;
        for (const Step& s : path.steps) {
          if (s.axis == Step::Axis::kChild) {
            epath.push_back(s.name);
          } else if (s.axis == Step::Axis::kAttribute) {
            attr = s.name;
          } else {
            return Status::Unimplemented("predicate path step kind");
          }
        }
        // Inlined field of tm?
        const InlinedField* f = mapping_->ResolveInlined(tm, epath, attr);
        if (f != nullptr) {
          if (pred.kind == Predicate::Kind::kExists) {
            return f->column + " IS NOT NULL";
          }
          return f->column + " " + op + " " + literal;
        }
        // Path descending through one child table: child field condition.
        if (!epath.empty()) {
          for (const TableMapping* child : mapping_->ChildTables(tm->element)) {
            if (child->element != epath.front()) continue;
            std::vector<std::string> rest(epath.begin() + 1, epath.end());
            const InlinedField* cf = mapping_->ResolveInlined(child, rest, attr);
            if (cf == nullptr && rest.empty() && attr.empty()) {
              // Existence of the child element itself.
              return "id IN (SELECT parentId FROM " + child->table + ")";
            }
            if (cf == nullptr) {
              return Status::Unimplemented("deep predicate path '" +
                                           Join(epath, "/") + "'");
            }
            if (pred.kind == Predicate::Kind::kExists) {
              return "id IN (SELECT parentId FROM " + child->table + " WHERE " +
                     cf->column + " IS NOT NULL)";
            }
            return "id IN (SELECT parentId FROM " + child->table + " WHERE " +
                   cf->column + " " + op + " " + literal + ")";
          }
        }
        return Status::Unimplemented("predicate path '" + Join(epath, "/") +
                                     "' not mapped under <" + tm->element +
                                     ">");
      }
    }
    return Status::Internal("unknown predicate kind");
  }

  Status ApplyWherePredicate(const Predicate& pred,
                             std::map<std::string, Binding>* env) {
    // WHERE predicates whose path starts at a bound variable narrow that
    // variable's id set.
    if ((pred.kind == Predicate::Kind::kCompare ||
         pred.kind == Predicate::Kind::kExists) &&
        pred.path.head == PathExpr::Head::kVariable) {
      auto it = env->find(pred.path.variable);
      if (it == env->end()) {
        return Status::NotFound("unbound variable $" + pred.path.variable +
                                " in WHERE");
      }
      Binding& b = it->second;
      if (b.inlined) {
        return Status::Unimplemented("WHERE over inlined binding");
      }
      Predicate relative = pred;
      relative.path.head = PathExpr::Head::kContext;
      relative.path.variable.clear();
      XUPD_ASSIGN_OR_RETURN(std::string sql, PredicateToSql(relative, b.table));
      XUPD_ASSIGN_OR_RETURN(std::string staged,
                            store_->IdListPredicate("id", b.ids));
      std::string full = staged + " AND (" + sql + ")";
      XUPD_ASSIGN_OR_RETURN(b.ids, store_->SelectIds(b.table->element, full));
      return Status::OK();
    }
    return Status::Unimplemented("WHERE predicate form in SQL translation");
  }

  // --- binding updates -------------------------------------------------------

  Status BindUpdate(const UpdateOp& op, std::map<std::string, Binding> env,
                    std::vector<PlannedOp>* plan) {
    for (const auto& clause : op.for_clauses) {
      XUPD_ASSIGN_OR_RETURN(Binding b, ResolvePath(clause.path, env));
      env[clause.variable] = std::move(b);
    }
    for (const Predicate& pred : op.where) {
      XUPD_RETURN_IF_ERROR(ApplyWherePredicate(pred, &env));
    }
    XUPD_ASSIGN_OR_RETURN(Binding target, ResolvePath(op.target, env));
    for (const SubOp& sub : op.sub_ops) {
      if (sub.kind == SubOp::Kind::kNestedUpdate) {
        XUPD_RETURN_IF_ERROR(BindUpdate(*sub.nested, env, plan));
        continue;
      }
      PlannedOp planned;
      planned.kind = sub.kind;
      planned.target = target;
      planned.rename_to = sub.rename_to;
      if (sub.kind == SubOp::Kind::kDelete ||
          sub.kind == SubOp::Kind::kRename ||
          sub.kind == SubOp::Kind::kReplace) {
        XUPD_ASSIGN_OR_RETURN(planned.child, ResolvePath(sub.child, env));
      }
      if (sub.kind == SubOp::Kind::kInsert ||
          sub.kind == SubOp::Kind::kReplace) {
        if (sub.position != SubOp::Position::kAppend) {
          return Status::Unimplemented(
              "positional INSERT in the relational store (document order is "
              "not maintained, §5.1)");
        }
        planned.content_kind = sub.content.kind;
        planned.content_text = sub.content.text;
        planned.content_name = sub.content.name;
        if (sub.content.kind == ContentExpr::Kind::kXmlFragment) {
          xml::ParseOptions options;
          auto frag = xml::ParseFragment(sub.content.text, options);
          if (!frag.ok()) return frag.status();
          planned.content_element = std::move(frag).value();
        } else if (sub.content.kind == ContentExpr::Kind::kPath) {
          XUPD_ASSIGN_OR_RETURN(planned.content_source,
                                ResolvePath(sub.content.path, env));
        }
      }
      plan->push_back(std::move(planned));
    }
    return Status::OK();
  }

  // --- executing planned ops -------------------------------------------------

  Status ExecuteOp(const PlannedOp& op) {
    switch (op.kind) {
      case SubOp::Kind::kDelete:
        return ExecuteDelete(op);
      case SubOp::Kind::kInsert:
        return ExecuteInsert(op);
      case SubOp::Kind::kReplace:
        // Inlined replace = overwrite; table-mapped replace = delete + insert.
        if (op.child.inlined) return ExecuteInsertInlined(op, op.child);
        XUPD_RETURN_IF_ERROR(ExecuteDelete(op));
        return ExecuteInsert(op);
      case SubOp::Kind::kRename:
        return ExecuteRename(op);
      case SubOp::Kind::kNestedUpdate:
        return Status::Internal("nested update not flattened");
    }
    return Status::Internal("unknown op kind");
  }

  Status ExecuteDelete(const PlannedOp& op) {
    const Binding& child = op.child;
    if (child.table == nullptr) {
      return Status::InvalidArgument("DELETE operand not bound");
    }
    if (child.inlined) {
      // Simple deletion (§6.1): set the inlined columns NULL.
      std::string sets;
      for (const InlinedField& f : child.table->fields) {
        bool under = f.path.size() >= child.inlined_path.size() &&
                     std::equal(child.inlined_path.begin(),
                                child.inlined_path.end(), f.path.begin());
        if (!child.inlined_attr.empty()) {
          under = under && f.kind == InlinedField::Kind::kAttribute &&
                  f.attr == child.inlined_attr &&
                  f.path == child.inlined_path;
        }
        if (under) {
          if (!sets.empty()) sets += ", ";
          sets += f.column + " = NULL";
        }
      }
      if (sets.empty()) {
        return Status::NotFound("no mapped columns for inlined delete");
      }
      if (child.ids.empty()) return Status::OK();
      XUPD_ASSIGN_OR_RETURN(std::string where,
                            store_->IdListPredicate("id", child.ids));
      return store_->db()->ExecuteBound(
          "UPDATE " + child.table->table + " SET " + sets + " WHERE " + where,
          {});
    }
    if (child.ids.empty()) return Status::OK();
    XUPD_ASSIGN_OR_RETURN(std::string where,
                          store_->IdListPredicate("id", child.ids));
    return store_->DeleteWhere(child.table->element, where);
  }

  Status ExecuteInsertInlined(const PlannedOp& op, const Binding& where) {
    // Overwrite semantics for inserting over a single-occurrence inlined
    // element (documented deviation; the paper would warn, §6.2).
    const TableMapping* tm = where.table;
    std::vector<std::string> path = where.inlined_path;
    std::string attr = where.inlined_attr;
    std::string value;
    if (op.content_kind == ContentExpr::Kind::kString) {
      value = op.content_text;
    } else if (op.content_kind == ContentExpr::Kind::kXmlFragment &&
               op.content_element != nullptr) {
      value = op.content_element->TextContent();
      if (path.empty() || path.back() != op.content_element->name()) {
        // REPLACE <name>x</name> WITH <appellation>y</> style renames are
        // not expressible when the mapping fixes columns.
        if (op.kind == SubOp::Kind::kReplace &&
            mapping_->ResolveInlined(tm, {op.content_element->name()}, "") ==
                nullptr &&
            !path.empty()) {
          return Status::Unimplemented(
              "replacing an inlined element with a differently-named element");
        }
      }
    } else if (op.content_kind == ContentExpr::Kind::kNewAttribute) {
      attr = op.content_name;
      value = op.content_text;
    } else {
      return Status::Unimplemented("content kind for inlined insert");
    }
    const InlinedField* f = mapping_->ResolveInlined(tm, path, attr);
    if (f == nullptr) {
      return Status::NotFound("no mapped column for inlined insert");
    }
    if (where.ids.empty()) return Status::OK();
    // Bind the content as a parameter: the statement text stays constant
    // across values (no quoting/escaping), so repeated ops over the same
    // column reuse one parsed plan.
    std::string sets = f->column + " = ?";
    // Maintain the presence flag of enclosing inlined non-leaf elements.
    for (const InlinedField& pf : tm->fields) {
      if (pf.kind == InlinedField::Kind::kPresence &&
          pf.path.size() <= path.size() &&
          std::equal(pf.path.begin(), pf.path.end(), path.begin())) {
        sets += ", " + pf.column + " = '1'";
      }
    }
    // The ids ride in the staged id-list table, so the statement text is
    // constant per (table, column set) shape: bind the content value and let
    // repeated ops share one cached plan.
    XUPD_ASSIGN_OR_RETURN(std::string id_pred,
                          store_->IdListPredicate("id", where.ids));
    return store_->db()->ExecuteBound(
        "UPDATE " + tm->table + " SET " + sets + " WHERE " + id_pred,
        {rdb::Value::Str(value)});
  }

  Status ExecuteInsert(const PlannedOp& op) {
    const Binding& target = op.target;
    if (target.table == nullptr || target.inlined) {
      return Status::InvalidArgument("INSERT target must be table-mapped");
    }
    switch (op.content_kind) {
      case ContentExpr::Kind::kXmlFragment: {
        const xml::Element* frag = op.content_element.get();
        // Child table content?
        if (mapping_->ForElement(frag->name()) != nullptr) {
          for (int64_t id : target.ids) {
            XUPD_RETURN_IF_ERROR(store_->InsertConstructed(*frag, id));
          }
          return Status::OK();
        }
        // Inlined single-occurrence content: overwrite the column(s).
        Binding where = target;
        where.inlined = true;
        where.inlined_path = {frag->name()};
        PlannedOp inlined = ClonePlannedShallow(op);
        return ExecuteInsertInlined(inlined, where);
      }
      case ContentExpr::Kind::kNewAttribute: {
        Binding where = target;
        where.inlined = true;
        where.inlined_attr = op.content_name;
        PlannedOp inlined = ClonePlannedShallow(op);
        return ExecuteInsertInlined(inlined, where);
      }
      case ContentExpr::Kind::kPath: {
        const Binding& src = op.content_source;
        if (src.table == nullptr || src.inlined) {
          return Status::Unimplemented("copying a non-table-mapped source");
        }
        if (src.ids.empty()) return Status::OK();
        // Stage the bound source ids in xupd_idlist and copy them in one
        // strategy pass per destination: the outer-union SELECT (and the
        // table/ASR strategies' marking statements) then carry the constant
        // "id IN (SELECT id FROM xupd_idlist)" root predicate instead of a
        // per-source literal id, so every copy reuses cached plans. The
        // copies themselves get fresh ids, so the staged set stays valid
        // across destinations.
        XUPD_ASSIGN_OR_RETURN(std::string pred,
                              store_->IdListPredicate("id", src.ids));
        for (int64_t dst : target.ids) {
          XUPD_RETURN_IF_ERROR(
              store_->CopySubtreesWhere(src.table->element, pred, dst));
        }
        return Status::OK();
      }
      case ContentExpr::Kind::kString: {
        Binding where = target;
        where.inlined = true;  // the element's own pcdata column.
        PlannedOp inlined = ClonePlannedShallow(op);
        return ExecuteInsertInlined(inlined, where);
      }
      default:
        return Status::Unimplemented("content kind in relational INSERT");
    }
  }

  Status ExecuteRename(const PlannedOp& op) {
    const Binding& child = op.child;
    if (!child.inlined || child.inlined_attr.empty()) {
      return Status::Unimplemented(
          "RENAME is supported for inlined attributes only (table names are "
          "fixed by the mapping; §6.3 notes only the top level moves)");
    }
    const InlinedField* from = mapping_->ResolveInlined(
        child.table, child.inlined_path, child.inlined_attr);
    const InlinedField* to = mapping_->ResolveInlined(
        child.table, child.inlined_path, op.rename_to);
    if (from == nullptr || to == nullptr) {
      return Status::NotFound(
          "both source and destination attribute columns must be mapped");
    }
    if (child.ids.empty()) return Status::OK();
    // §6.3: movement but no creation of data; one UPDATE on the top level.
    XUPD_ASSIGN_OR_RETURN(std::string where,
                          store_->IdListPredicate("id", child.ids));
    return store_->db()->ExecuteBound(
        "UPDATE " + child.table->table + " SET " + to->column + " = " +
            from->column + ", " + from->column + " = NULL WHERE " + where,
        {});
  }

  static PlannedOp ClonePlannedShallow(const PlannedOp& op) {
    PlannedOp out;
    out.kind = op.kind;
    out.content_kind = op.content_kind;
    out.content_text = op.content_text;
    out.content_name = op.content_name;
    if (op.content_element != nullptr) {
      out.content_element = op.content_element->Clone();
    }
    out.rename_to = op.rename_to;
    return out;
  }

  RelationalStore* store_;
  const shred::Mapping* mapping_;
};

}  // namespace

Status RelationalStore::ExecuteXQueryUpdate(std::string_view query) {
  EngineSpan span(db(), "xquery_update");
  auto stmt = xquery::ParseStatement(query);
  if (!stmt.ok()) return stmt.status();
  // Whole-statement atomicity (§6): bind + every sub-operation commit or
  // roll back together; the sub-operations' own entry-point transactions
  // nest as savepoints inside this scope.
  return RunInTxn([&]() -> Status {
    Translator translator(this);
    return translator.Execute(stmt.value());
  });
}

}  // namespace xupd::engine
