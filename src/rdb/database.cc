#include "rdb/database.h"

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "rdb/sql_executor.h"
#include "rdb/sql_parser.h"

namespace xupd::rdb {

namespace {

// Busy-wait so the simulated latency shows up in wall-clock measurements.
void SpinFor(double us) {
  if (us <= 0) return;
  Stopwatch sw;
  while (sw.ElapsedSeconds() * 1e6 < us) {
  }
}

}  // namespace

Status Database::Execute(std::string_view sql_text) {
  ++stats_.statements;
  SpinFor(statement_latency_us_);
  auto stmt = sql::ParseSql(sql_text);
  if (!stmt.ok()) return stmt.status();
  Executor exec(this);
  auto result = exec.Run(stmt.value());
  if (!result.ok()) return result.status();
  return Status::OK();
}

Result<ResultSet> Database::ExecuteQuery(std::string_view sql_text) {
  ++stats_.statements;
  SpinFor(statement_latency_us_);
  auto stmt = sql::ParseSql(sql_text);
  if (!stmt.ok()) return stmt.status();
  Executor exec(this);
  return exec.Run(stmt.value());
}

Result<Table*> Database::CreateTableDirect(TableSchema schema) {
  std::string key = AsciiToLower(schema.name());
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + schema.name() + "' already exists");
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* raw = table.get();
  tables_.emplace(std::move(key), std::move(table));
  return raw;
}

Status Database::InsertDirect(Table* table, Row row) {
  auto rowid = table->Insert(std::move(row));
  if (!rowid.ok()) return rowid.status();
  ++stats_.rows_inserted;
  return Status::OK();
}

Table* Database::FindTable(std::string_view name) {
  auto it = tables_.find(AsciiToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(std::string_view name) const {
  auto it = tables_.find(AsciiToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) {
    out.push_back(table->schema().name());
  }
  return out;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out = Join(columns, " | ") + "\n";
  size_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size()) + " rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace xupd::rdb
