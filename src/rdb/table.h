// Heap table with tombstone deletes, hash indexes, and epoch-snapshot MVCC.
//
// Storage layout (the scan/probe hot path of every fig. 6-11 workload):
//
//  * Rows live in ONE contiguous slab per table — `(arity + 1) * 16` bytes
//    per row slot (16-byte compact Values, rdb/value.h, plus one trailing
//    16-byte MVCC metadata slot), appended in rowid order. Scan/IndexProbe/
//    Filter stream over cache-line-friendly memory and a row is addressed
//    by one multiply (`slab + rowid * stride`), not a double indirection.
//
//  * HashIndex is a flat open-addressing table whose entries hold
//    (hash, value, rowid) inline — no per-key map node, no per-entry set
//    node. Entries of equal key are threaded through a doubly-linked chain
//    (indexes into the entry array) whose head is found through a second
//    flat table keyed by value, so Lookup walks a chain and Erase of an
//    exact (value, rowid) pair is O(1): the pair itself is open-addressed.
//    Indexes are writer-private: snapshot readers always scan (their plans
//    are built with index probes disabled), so index mutation needs no
//    synchronization.
//
// MVCC (single writer, many pinned readers — see rdb/epoch.h):
//
//  * Each row's metadata slot packs word0 = (end_epoch << 32 | begin_epoch)
//    and word1 = the epoch of the row's last in-place modification. A
//    reader pinned at epoch P sees the row iff begin <= P < end. Insert
//    stamps begin = write_epoch (invisible until the boundary publishes
//    it); Delete stamps end = write_epoch (still visible to older pins —
//    the tombstoned values stay in the slot); rollback restores the stamps.
//
//  * In-place column updates use a per-row seqlock: the first update of a
//    row inside an epoch window parks a copy of the whole pre-image in the
//    table's version buffer (keyed by rowid, tagged with the window), then
//    stamps word1 = write_epoch and overwrites cells with word-atomic
//    stores. A reader whose pin predates word1 — or whose optimistic
//    word-copy fails revalidation — fetches the row from the version
//    buffer instead. Version entries are garbage-collected once no reader
//    pins an epoch they could serve.
//
//  * The slab itself is published through an atomic pointer + atomic row
//    count: growth copies into a fresh buffer and retires the old one via
//    the epoch manager (freed raw, without running Value destructors — the
//    new buffer owns every reference; the old one holds ghost images that
//    pinned readers may still be streaming).
#ifndef XUPD_RDB_TABLE_H_
#define XUPD_RDB_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdb/epoch.h"
#include "rdb/governance.h"
#include "rdb/schema.h"
#include "rdb/stats.h"
#include "rdb/value.h"

namespace xupd::rdb {

class TransactionManager;

/// Per-table access statistics (SHOW TABLE STATS): maintained by the exec
/// nodes (scans, rows read) and the Table mutation entry points (rows
/// inserted/deleted/updated), so direct-API writes count too. RelaxedU64
/// keeps every bump one relaxed fetch_add — safe from reader sessions and
/// free of ordering cost on the scan hot path.
struct TableAccessStats {
  RelaxedU64 scans;          ///< scan operator opens over this table.
  RelaxedU64 rows_read;      ///< rows emitted by scans/probes of this table.
  RelaxedU64 rows_inserted;
  RelaxedU64 rows_deleted;
  RelaxedU64 rows_updated;
};

/// Hash index over one column: value -> set of row ids. Erase of an exact
/// (value, rowid) pair stays O(1) even for low-cardinality keys (e.g. a
/// parentId shared by thousands of children, or an ASR column holding the
/// single root id) because the pair table is open-addressed on
/// (value, rowid), not on the value alone.
class HashIndex {
 public:
  HashIndex(std::string name, int column)
      : name_(std::move(name)), column_(column) {}

  const std::string& name() const { return name_; }
  int column() const { return column_; }

  /// Adds (v, rowid); a duplicate exact pair is a no-op (set semantics).
  void Insert(const Value& v, size_t rowid);
  /// Removes (v, rowid); absent pairs are a no-op.
  void Erase(const Value& v, size_t rowid);
  /// Appends matching row ids to *out (chain order — callers that need a
  /// deterministic order sort; multi-probe callers dedupe too). Counts one
  /// probe, and one hit when at least one row id matched.
  void Lookup(const Value& v, std::vector<size_t>* out) const;
  void Clear();
  size_t size() const { return size_; }

  /// Probe lookups issued against this index, and how many found at least
  /// one entry (SHOW TABLE STATS).
  uint64_t probes() const { return probes_.load(); }
  uint64_t probe_hits() const { return hits_.load(); }

  /// Scrub hook (rdb/integrity.cc): calls fn(value, rowid) for every live
  /// entry, in slot order.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.state == 1) fn(s.value, static_cast<size_t>(s.rowid));
    }
  }

 private:
  /// One entry: the key's hash, the key, the rowid, and the doubly-linked
  /// same-key chain threaded through the entry array.
  struct Slot {
    uint64_t vhash = 0;
    uint64_t rowid = 0;
    Value value;
    int32_t prev = -1;  ///< chain: previous entry index, -1 = chain head.
    int32_t next = -1;  ///< chain: next entry index, -1 = chain tail.
    uint8_t state = 0;  ///< 0 empty, 1 occupied, 2 tombstone.
  };

  /// Entry index of (v, rowid) in slots_, or -1.
  int32_t FindPair(uint64_t vhash, const Value& v, size_t rowid) const;
  /// Insert with a precomputed value hash (Rehash relinks without
  /// recomputing Value::Hash, which re-parses numeric-looking strings).
  void InsertEntry(uint64_t vhash, const Value& v, size_t rowid);
  /// heads_ position whose chain head carries key `v`, or -1.
  int32_t FindHead(uint64_t vhash, const Value& v) const;
  /// Grows (or initializes) both flat tables and relinks every chain.
  void Rehash(size_t new_cap);
  /// Finalizing bit mixer (murmur3 fmix64). Value::Hash of an integer is
  /// the identity (libstdc++ std::hash<int64_t>), and the engine's keys and
  /// rowids are dense sequential ints — feeding them to linear probing
  /// unmixed coalesces the table into one giant probe run (O(n) inserts).
  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }
  static uint64_t PairHash(uint64_t vhash, uint64_t rowid) {
    return Mix(vhash ^ (rowid + 0x9e3779b97f4a7c15ULL));
  }
  static uint64_t HeadHash(uint64_t vhash) { return Mix(vhash); }

  std::string name_;
  int column_;
  /// Flat entry array, open-addressed on PairHash(value, rowid).
  /// Power-of-two capacity; linear probing; tombstoned on erase.
  std::vector<Slot> slots_;
  /// Chain heads, open-addressed on the value hash alone: -1 empty,
  /// -2 tombstone, else the entry index of the key's chain head.
  std::vector<int32_t> heads_;
  size_t size_ = 0;        ///< live entries.
  size_t slots_used_ = 0;  ///< occupied + tombstoned entry slots.
  size_t heads_used_ = 0;  ///< occupied + tombstoned head slots.
  mutable RelaxedU64 probes_;  ///< Lookup calls (access stats).
  mutable RelaxedU64 hits_;    ///< Lookups that matched >= 1 entry.
};

/// View over one row's 16-byte MVCC metadata slot (the trailing Value-sized
/// cell of each row). Word 0 packs (end << 32 | begin) row epochs so the
/// pair is always read/written in one untorn operation; word 1 holds the
/// epoch of the row's last in-place modification (the seqlock word). All
/// accesses are atomic: the writer stamps from its thread while pinned
/// readers load concurrently. Stores keep byte 15 (the Value tag byte)
/// zero — epochs stay far below 2^56 — so metadata slots destruct as NULL
/// Values.
class RowMetaRef {
 public:
  explicit RowMetaRef(const Value* slot)
      : words_(reinterpret_cast<uint64_t*>(
            const_cast<Value*>(slot))) {}

  static uint32_t Begin(uint64_t w0) { return static_cast<uint32_t>(w0); }
  static uint32_t End(uint64_t w0) { return static_cast<uint32_t>(w0 >> 32); }
  static bool Visible(uint64_t w0, uint64_t pin) {
    return Begin(w0) <= pin && pin < End(w0);
  }

  uint64_t begin_end() const {
    return std::atomic_ref<uint64_t>(words_[0]).load(
        std::memory_order_relaxed);
  }
  void StoreBeginEnd(uint32_t begin, uint32_t end) {
    std::atomic_ref<uint64_t>(words_[0]).store(
        (static_cast<uint64_t>(end) << 32) | begin,
        std::memory_order_relaxed);
  }
  void StoreEnd(uint32_t end) {
    StoreBeginEnd(Begin(begin_end()), end);
  }

  uint64_t mod() const {
    return std::atomic_ref<uint64_t>(words_[1]).load(
        std::memory_order_relaxed);
  }
  uint64_t mod_acquire() const {
    return std::atomic_ref<uint64_t>(words_[1]).load(
        std::memory_order_acquire);
  }
  void StoreMod(uint64_t m) {
    std::atomic_ref<uint64_t>(words_[1]).store(m, std::memory_order_relaxed);
  }

 private:
  uint64_t* words_;
};

class Table {
 public:
  /// `txn` (optional) is the undo log every mutation reports to while a
  /// transaction is active; tables created through the Database catalog are
  /// always wired to its TransactionManager.
  explicit Table(TableSchema schema, TransactionManager* txn = nullptr)
      : schema_(std::move(schema)),
        arity_(schema_.column_count()),
        stride_(arity_ + 1),
        txn_(txn) {}
  ~Table();
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }

  /// Durable tables participate in write-ahead logging and snapshots
  /// (rdb/wal.h): tables created through SQL DDL or recovered from a
  /// snapshot are durable; engine scratch tables created through the direct
  /// catalog API are not — their contents are rebuilt, not recovered.
  bool durable() const { return durable_; }
  void set_durable(bool durable) { durable_ = durable; }

  /// Wires the per-Database string interner: long string values are
  /// canonicalized on their way into the slab, so repeated names/paths
  /// across millions of rows share one heap block.
  void set_interner(StringInterner* interner) { interner_ = interner; }

  /// Wires the Database's epoch manager: row metadata is stamped with its
  /// write epoch and superseded storage is retired through it. Tables
  /// without a manager (unit tests) behave single-threaded — every row is
  /// born at epoch 1 and storage is freed eagerly.
  void set_epoch_manager(EpochManager* em) { em_ = em; }

  /// Wires the Database's memory accountant: slab capacity is charged to
  /// mem.table_slabs at growth (released when the superseded buffer is
  /// actually freed, which may lag behind epoch retirement) and parked
  /// pre-images to mem.version_buffers. Null = unaccounted (unit tests).
  void set_accountant(MemoryAccountant* mem) { mem_ = mem; }

  /// Number of row slots (live + tombstoned). Scans iterate this range.
  /// Writer-thread view; readers use SnapshotRowCount().
  size_t capacity() const { return live_.size(); }
  size_t live_count() const { return live_count_; }

  bool is_live(size_t rowid) const { return live_[rowid]; }
  /// The row's columns, contiguous in the table slab. Valid until the next
  /// insert into this table (slab growth may relocate it) — the same
  /// lifetime the old vector-of-rows layout gave. Writer thread only;
  /// pinned readers go through SnapshotReadRow.
  const Value* row(size_t rowid) const {
    return cells_.load(std::memory_order_relaxed) + rowid * stride_;
  }
  /// Range-for friendly view of one row.
  std::span<const Value> row_span(size_t rowid) const {
    return {row(rowid), arity_};
  }
  /// Copies one row out (callers that must survive later mutations).
  Row CopyRow(size_t rowid) const {
    const Value* r = row(rowid);
    return Row(r, r + arity_);
  }

  // --- pinned-reader snapshot API (any thread, under an epoch pin) --------

  /// Row slots a reader pinned at some epoch may examine. The acquire load
  /// pairs with the writer's release publication of each appended row, so
  /// every slot below the returned count is fully initialized (possibly
  /// with a begin epoch newer than the reader's pin, which the visibility
  /// check rejects).
  size_t SnapshotRowCount() const {
    return filled_.load(std::memory_order_acquire);
  }

  /// Copies the version of row `rowid` visible at epoch `pin` into `out`
  /// (exactly arity() values, appended). Returns false when no version of
  /// the row is visible at that epoch. `rowid` must be < a prior
  /// SnapshotRowCount() result. Thread-safe against every writer mutation.
  bool SnapshotReadRow(size_t rowid, uint64_t pin, Row* out) const;

  size_t arity() const { return arity_; }

  /// Access statistics for SHOW TABLE STATS; bumped from the exec nodes
  /// (any thread) and the mutation entry points (writer thread).
  TableAccessStats& access_stats() const { return access_stats_; }

  /// Version-buffer occupancy: parked pre-image rows and their approximate
  /// byte footprint (cells only). Readable from any thread.
  uint64_t version_rows() const { return version_rows_.load(); }
  uint64_t version_bytes() const { return version_bytes_.load(); }

  /// Frees version-buffer entries no pinned reader can need anymore
  /// (writer thread, at commit boundaries). Returns the number of parked
  /// pre-images trimmed.
  size_t GcVersions(uint64_t min_pinned);

  /// Appends a row (arity must match the schema). Returns its rowid.
  Result<size_t> Insert(Row row);

  /// Snapshot-restore append (rdb/snapshot.cc): places `row` in the next
  /// slot with the given liveness, without undo/WAL logging or index
  /// maintenance — tombstoned slots keep their positions (row ids are
  /// physical WAL addresses) and indexes are created after all slots load.
  void LoadSlot(Row row, bool live);

  /// Tombstones a row; index entries are removed.
  Status Delete(size_t rowid);

  /// Truncates the table: every row slot (live and tombstoned) and all index
  /// entries are discarded, resetting capacity() to 0. NOT transactional —
  /// no undo is logged and any undo records already held for this table
  /// become no-ops (their rowids fall out of range). For scratch tables.
  void Clear();

  /// Sets one column; index entries are maintained.
  Status SetColumn(size_t rowid, int column, Value v);

  /// Creates a hash index over `column` (by index), populating from current
  /// rows. Fails if an index of this name exists.
  Status CreateIndex(const std::string& index_name, int column);
  Status DropIndex(const std::string& index_name);
  /// Drops the index if this table owns one of that name; returns whether it
  /// did. Single scan — lets DROP INDEX's owning-table search avoid the
  /// find-then-drop double lookup.
  bool TryDropIndex(std::string_view index_name);

  /// Index over `column`, or null.
  const HashIndex* FindIndexOnColumn(int column) const;
  const HashIndex* FindIndexByName(const std::string& name) const;
  /// All indexes, for snapshot serialization.
  const std::vector<std::unique_ptr<HashIndex>>& indexes() const {
    return indexes_;
  }

  // --- rollback hooks (TransactionManager only; none of these log) --------

  /// Reverts an Insert: removes index entries and kills the row. When the
  /// row is still the newest slot (always true under LIFO undo) the slot is
  /// popped, restoring capacity() too.
  void UndoInsert(size_t rowid);
  /// Reverts a Delete: revives the tombstoned row (its data is still in the
  /// slot) and re-adds its index entries.
  void UndoDelete(size_t rowid);
  /// Reverts a SetColumn: writes the old value back, index-maintaining.
  void UndoSetColumn(size_t rowid, int column, const Value& v);

 private:
  /// One parked pre-image: the row's contents before its first in-place
  /// update inside epoch window `end_valid` — i.e. the version readers
  /// pinned at P < end_valid must see when the slab cells have moved on.
  struct OldVersion {
    uint64_t end_valid = 0;
    Row values;
  };

  Value* mutable_row(size_t rowid) {
    return cells_.load(std::memory_order_relaxed) + rowid * stride_;
  }
  RowMetaRef meta(size_t rowid) const {
    return RowMetaRef(cells_.load(std::memory_order_relaxed) +
                      rowid * stride_ + arity_);
  }
  /// The epoch the writer's in-flight changes belong to (1 when no epoch
  /// manager is attached — single-threaded mode).
  uint64_t WriteEpoch() const { return em_ != nullptr ? em_->write_epoch() : 1; }

  /// Ensures room for one more row, growing (and epoch-retiring the old
  /// buffer) as needed. Returns the cell pointer for the new row slot.
  Value* ReserveRowSlot();
  /// Appends `row` (already interned) as the next slot with the given
  /// MVCC stamps, publishing it to readers.
  void AppendRow(Row&& row, uint32_t begin, uint32_t end, uint64_t mod);
  /// Parks the row's pre-image for pinned readers and opens its seqlock
  /// window, if this is the row's first in-place update in the current
  /// epoch window.
  void PrepareRowUpdate(size_t rowid);
  /// Retires `buf` (holding `rows` row slots) through the epoch manager,
  /// or frees it immediately when no reader can reference it.
  /// `destroy_values` runs Value destructors at free time (Clear); growth
  /// retires ghost images without them. `charged_bytes` is the slab charge
  /// released from the accountant when the buffer is actually freed.
  void RetireBuffer(Value* buf, size_t rows, bool destroy_values,
                    size_t charged_bytes);

  TableSchema schema_;
  size_t arity_;
  size_t stride_;  ///< arity_ + 1 (trailing MVCC metadata slot).
  TransactionManager* txn_ = nullptr;
  StringInterner* interner_ = nullptr;
  EpochManager* em_ = nullptr;
  MemoryAccountant* mem_ = nullptr;
  bool durable_ = false;
  /// Row slots back to back: slot i occupies cells_[i*stride_ ..
  /// (i+1)*stride_). Published atomically so pinned readers can chase the
  /// pointer while the writer grows or clears the slab; the buffer itself
  /// is raw storage managed by ReserveRowSlot/RetireBuffer.
  std::atomic<Value*> cells_{nullptr};
  size_t cap_rows_ = 0;                ///< writer-only buffer capacity.
  std::atomic<size_t> filled_{0};      ///< published (initialized) rows.
  std::vector<bool> live_;             ///< writer-only liveness view.
  size_t live_count_ = 0;
  /// Parked pre-images for rows updated in place while readers could be
  /// pinned; guarded by versions_mu_ (writer emplaces/GCs, readers look
  /// up on seqlock failure).
  mutable std::mutex versions_mu_;
  std::unordered_multimap<size_t, OldVersion> versions_;
  /// Version-buffer occupancy mirrors of versions_ (rows / approx bytes),
  /// readable without the mutex for gauges and SHOW TABLE STATS.
  RelaxedU64 version_rows_;
  RelaxedU64 version_bytes_;
  mutable TableAccessStats access_stats_;
  std::vector<std::unique_ptr<HashIndex>> indexes_;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_TABLE_H_
