// DBLP maintenance pipeline: generate a DBLP-like document (§7.1.3), load it
// into the relational store, run the Table-2 maintenance operations (delete
// the year-2000 publications; archive-copy some conferences), and verify the
// result round-trips through the Sorted Outer Union.
#include <cstdio>

#include "engine/store.h"
#include "workload/synthetic.h"
#include "xml/serializer.h"

using namespace xupd;

int main(int argc, char** argv) {
  int conferences = argc > 1 ? std::atoi(argv[1]) : 40;
  workload::DblpSpec spec;
  spec.conferences = conferences;
  auto gen = workload::GenerateDblp(spec, /*seed=*/2026);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
    return 1;
  }
  std::printf("generated DBLP-like doc: %zu tuples\n", gen->tuple_count);

  engine::RelationalStore::Options options;
  options.delete_strategy = engine::DeleteStrategy::kPerTupleTrigger;
  options.insert_strategy = engine::InsertStrategy::kTable;
  auto store_or = engine::RelationalStore::Create(gen->dtd, options);
  if (!store_or.ok()) {
    std::fprintf(stderr, "%s\n", store_or.status().ToString().c_str());
    return 1;
  }
  auto store = std::move(store_or).value();
  if (Status s = store->Load(*gen->doc); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto count = [&](const char* table) {
    auto r = store->db()->ExecuteQuery(std::string("SELECT COUNT(*) FROM ") +
                                       table);
    return r.ok() ? r->rows[0][0].AsInt() : -1;
  };
  std::printf("loaded: %lld conferences, %lld publications, %lld authors, "
              "%lld cites\n",
              static_cast<long long>(count("conference")),
              static_cast<long long>(count("publication")),
              static_cast<long long>(count("author")),
              static_cast<long long>(count("cite")));

  // Maintenance 1 (Table 2's delete): drop the year-2000 publications.
  rdb::Stats before = store->stats();
  Status s = store->ExecuteXQueryUpdate(R"(
      FOR $d IN document("dblp.xml"),
          $p IN $d//publication[year="2000"]
      UPDATE $d { DELETE $p })");
  if (!s.ok()) {
    std::fprintf(stderr, "delete failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("deleted year-2000 publications: %s\n",
              store->stats().Delta(before).ToString().c_str());
  std::printf("publications remaining: %lld\n",
              static_cast<long long>(count("publication")));

  // Maintenance 2 (Table 2's insert): archive-copy the first 3 conferences.
  auto ids = store->SelectIds("conference", "");
  if (!ids.ok()) return 1;
  before = store->stats();
  for (size_t i = 0; i < 3 && i < ids->size(); ++i) {
    if (Status cs = store->CopySubtree("conference", (*ids)[i],
                                       store->root_id());
        !cs.ok()) {
      std::fprintf(stderr, "copy failed: %s\n", cs.ToString().c_str());
      return 1;
    }
  }
  std::printf("archived 3 conferences:  %s\n",
              store->stats().Delta(before).ToString().c_str());
  std::printf("conferences now: %lld\n",
              static_cast<long long>(count("conference")));

  // Round-trip sanity: the store still reconstructs into a document.
  auto rebuilt = store->Reconstruct();
  if (!rebuilt.ok()) {
    std::fprintf(stderr, "reconstruct failed: %s\n",
                 rebuilt.status().ToString().c_str());
    return 1;
  }
  std::printf("round-trip OK: reconstructed %zu elements\n",
              rebuilt.value()->ElementCount());
  return 0;
}
