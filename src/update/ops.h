// The primitive update operations of §3.2, executed over the native tree.
//
// An UpdateExecutor scopes one *update operation* (a sequence of primitive
// sub-operations over pre-computed bindings) and enforces the paper's
// semantic restrictions:
//   * all bindings are made over the input before any updates execute
//     (callers bind first, then apply);
//   * a deleted binding cannot be the target of a later operation in the
//     sequence — but it can be used as *content* (copy semantics);
//   * IDREFS entry bindings stay valid under earlier inserts/deletes within
//     the same list (original positions are tracked and remapped);
//   * ordered vs unordered execution models differ in where plain Insert
//     places content (append at end vs arbitrary; we implement "arbitrary"
//     as append too, but InsertBefore/InsertAfter are rejected when the
//     model is unordered).
#ifndef XUPD_UPDATE_OPS_H_
#define XUPD_UPDATE_OPS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "update/content.h"
#include "xml/document.h"
#include "xpath/object.h"

namespace xupd::update {

enum class ExecutionModel { kOrdered, kUnordered };

class UpdateExecutor {
 public:
  UpdateExecutor(xml::Document* doc, ExecutionModel model)
      : doc_(doc), model_(model) {}

  /// Delete(child): removes `child` (element / attribute / IDREF entry /
  /// PCDATA) from its target object. Deleted subtrees are kept alive in a
  /// graveyard so later operations may still use them as content.
  Status Delete(const xpath::XmlObject& child);

  /// Rename(child, name): renames an element, attribute, or entire IDREFS
  /// list. Renaming an individual IDREF entry renames its whole list (§3.2);
  /// PCDATA cannot be renamed.
  Status Rename(const xpath::XmlObject& child, const std::string& name);

  /// Insert(target, content): appends new content to `target` (an element).
  /// Attribute inserts fail on name collision; reference inserts extend an
  /// existing list.
  Status Insert(const xpath::XmlObject& target, const Content& content);

  /// InsertBefore/InsertAfter(ref, content): positional insertion, ordered
  /// model only. `ref` is a child element / PCDATA (content must be element
  /// or PCDATA) or an IDREFS entry (content must be a reference).
  Status InsertBefore(const xpath::XmlObject& ref, const Content& content);
  Status InsertAfter(const xpath::XmlObject& ref, const Content& content);

  /// Replace(child, content): atomic InsertBefore+Delete (ordered) or
  /// Insert+Delete (unordered). A reference binding may only be replaced by
  /// a reference with the same label (§4.2.3).
  Status Replace(const xpath::XmlObject& child, const Content& content);

  /// True if the object (or an ancestor of it) was deleted earlier in this
  /// operation sequence.
  bool IsDeleted(const xpath::XmlObject& obj) const;

  xml::Document* document() const { return doc_; }
  ExecutionModel model() const { return model_; }

 private:
  Status CheckLive(const xpath::XmlObject& obj);
  /// Current position of an IDREFS entry bound at original position
  /// `original`; -1 if that entry was deleted.
  int64_t CurrentRefIndex(const xml::Element* owner, const std::string& list,
                          size_t original) const;
  void NoteRefRemoved(const xml::Element* owner, const std::string& list,
                      int64_t current_pos);
  void NoteRefInserted(const xml::Element* owner, const std::string& list,
                       int64_t current_pos);
  Status InsertRelative(const xpath::XmlObject& ref, const Content& content,
                        bool before);

  xml::Document* doc_;
  ExecutionModel model_;

  /// Subtree roots (elements / text nodes) detached by Delete; owned here so
  /// content copies still work.
  std::vector<std::unique_ptr<xml::Node>> graveyard_;
  std::set<const xml::Node*> deleted_nodes_;
  /// Attributes deleted in this sequence: (element, attr name).
  std::set<std::pair<const xml::Element*, std::string>> deleted_attrs_;

  /// Per (element, list): map original position -> current position (-1 =
  /// deleted). Lazily initialized to identity on first touch.
  using RefKey = std::pair<const xml::Element*, std::string>;
  mutable std::map<RefKey, std::vector<int64_t>> ref_positions_;
};

}  // namespace xupd::update

#endif  // XUPD_UPDATE_OPS_H_
