// §7.2: effect of Access Support Relations on path-expression evaluation.
// Compares the conventional plan (a chain of parentId joins along the path)
// against the ASR plan (filtered leaf x ASR x start table — two joins) for
// path lengths 3..5 and fanouts 1 and 4.
//
// Expected shape (§7.2): with fanout 4 the ASR is large (one row per full
// path) and loses on short paths; with small fanout or long paths it wins.
#include <cstdio>
#include <cstdlib>

#include "harness.h"

using namespace xupd;

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  std::printf("# Section 7.2: path-expression evaluation, joins vs ASR\n");
  std::printf("%-7s %-9s %10s %12s %12s %10s\n", "fanout", "path_len",
              "asr_rows", "joins_sec", "asr_sec", "asr_wins");
  for (int fanout : {1, 4}) {
    workload::SyntheticSpec spec;
    spec.scaling_factor = 100;
    spec.depth = 6;
    spec.fanout = fanout;
    auto gen = workload::GenerateFixedSynthetic(spec, 42);
    if (!gen.ok()) return 1;
    engine::RelationalStore::Options options;
    options.build_asr = true;
    auto store_or = engine::RelationalStore::Create(gen->dtd, options);
    if (!store_or.ok()) return 1;
    auto store = std::move(store_or).value();
    if (!store->Load(*gen->doc).ok()) return 1;
    size_t asr_rows = store->db()->FindTable("asr")->live_count();

    for (int path_len : {3, 4, 5}) {
      // Path n1 -> n<path_len>; filter on the leaf's integer value column.
      std::string leaf = "n" + std::to_string(path_len);
      std::string joins_pred = "l0.v" + std::to_string(path_len) + " < '200000'";
      std::string asr_pred = "l.v" + std::to_string(path_len) + " < '200000'";
      double joins_total = 0, asr_total = 0;
      size_t joins_n = 0, asr_n = 0;
      for (int r = 0; r < runs; ++r) {
        Stopwatch sw;
        auto a = store->PathQueryJoins("n1", leaf, joins_pred);
        double tj = sw.ElapsedSeconds();
        if (!a.ok()) {
          std::fprintf(stderr, "%s\n", a.status().ToString().c_str());
          return 1;
        }
        sw.Restart();
        auto b = store->PathQueryAsr("n1", leaf, asr_pred);
        double ta = sw.ElapsedSeconds();
        if (!b.ok()) {
          std::fprintf(stderr, "%s\n", b.status().ToString().c_str());
          return 1;
        }
        if (*a != *b) {
          std::fprintf(stderr, "plan results differ!\n");
          return 1;
        }
        if (r > 0) {
          joins_total += tj;
          asr_total += ta;
          ++joins_n;
          ++asr_n;
        }
      }
      double joins_avg = joins_total / static_cast<double>(joins_n);
      double asr_avg = asr_total / static_cast<double>(asr_n);
      std::printf("%-7d %-9d %10zu %12.6f %12.6f %10s\n", fanout, path_len,
                  asr_rows, joins_avg, asr_avg,
                  asr_avg < joins_avg ? "yes" : "no");
    }
  }
  return 0;
}
