#include "test_util.h"

#include <cstdlib>
#include <iostream>

namespace xupd::testing {

const char kBioXml[] = R"(<db lab="lalab">
  <university ID="ucla">
    <lab ID="lalab" managers="smith1 jones1">
      <name>UCLA Bio Lab</name>
      <city>Los Angeles</city>
    </lab>
  </university>
  <lab ID="baselab" managers="smith1">
    <name>Seattle Bio Lab</name>
    <location>
      <city>Seattle</city>
      <country>USA</country>
    </location>
  </lab>
  <lab ID="lab2">
    <name>PMBL</name>
    <city>Philadelphia</city>
    <country>USA</country>
  </lab>
  <paper ID="Smith991231" source="lab2" category="spectral" biologist="smith1">
    <title>Autocatalysis of Spectral...</title>
  </paper>
  <biologist ID="smith1">
    <lastname>Smith</lastname>
  </biologist>
  <biologist ID="jones1" age="32">
    <lastname>Jones</lastname>
  </biologist>
</db>)";

const char kCustomerDtd[] = R"(
<!ELEMENT CustDB (Customer*)>
<!ELEMENT Customer (Name, Address, Order*)>
<!ELEMENT Address (City, State)>
<!ELEMENT Order (Date, Status?, OrderLine*)>
<!ELEMENT OrderLine (ItemName, Qty, comment?)>
<!ELEMENT Name (#PCDATA)>
<!ELEMENT City (#PCDATA)>
<!ELEMENT State (#PCDATA)>
<!ELEMENT Date (#PCDATA)>
<!ELEMENT Status (#PCDATA)>
<!ELEMENT ItemName (#PCDATA)>
<!ELEMENT Qty (#PCDATA)>
<!ELEMENT comment (#PCDATA)>
)";

const char kCustomerXml[] = R"(<CustDB>
  <Customer>
    <Name>John</Name>
    <Address><City>Seattle</City><State>WA</State></Address>
    <Order>
      <Date>2000-05-01</Date>
      <Status>ready</Status>
      <OrderLine><ItemName>tire</ItemName><Qty>4</Qty></OrderLine>
      <OrderLine><ItemName>wrench</ItemName><Qty>1</Qty></OrderLine>
    </Order>
    <Order>
      <Date>2000-06-12</Date>
      <Status>shipped</Status>
      <OrderLine><ItemName>tire</ItemName><Qty>2</Qty></OrderLine>
    </Order>
  </Customer>
  <Customer>
    <Name>Mary</Name>
    <Address><City>Fresno</City><State>CA</State></Address>
    <Order>
      <Date>2000-07-04</Date>
      <Status>ready</Status>
      <OrderLine><ItemName>hammer</ItemName><Qty>1</Qty></OrderLine>
    </Order>
  </Customer>
  <Customer>
    <Name>John</Name>
    <Address><City>Portland</City><State>OR</State></Address>
  </Customer>
</CustDB>)";

std::unique_ptr<xml::Document> ParseBioDocument() {
  xml::ParseOptions options;
  options.ref_attributes = {"managers", "source", "biologist", "lab",
                            "worksAt"};
  auto parsed = xml::ParseXml(kBioXml, options);
  if (!parsed.ok()) {
    std::cerr << "ParseBioDocument failed: " << parsed.status() << "\n";
    std::abort();
  }
  return std::move(parsed.value().document);
}

std::unique_ptr<xml::Document> MustParse(const std::string& text) {
  auto parsed = xml::ParseXml(text);
  if (!parsed.ok()) {
    std::cerr << "MustParse failed: " << parsed.status() << "\n";
    std::abort();
  }
  return std::move(parsed.value().document);
}

xml::Dtd MustParseDtd(const std::string& text) {
  auto dtd = xml::Dtd::Parse(text);
  if (!dtd.ok()) {
    std::cerr << "MustParseDtd failed: " << dtd.status() << "\n";
    std::abort();
  }
  return std::move(dtd).value();
}

}  // namespace xupd::testing
