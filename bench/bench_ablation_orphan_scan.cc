// Ablation: the per-statement trigger's orphan sweep scans the entire child
// relation, so its cost grows with document size even when the delete
// touches a constant number of tuples — the mechanism behind Figure 7's
// rising per-stm curve (vs the flat per-tuple curve).
#include <cstdio>
#include <cstdlib>

#include "harness.h"

using namespace xupd;
using engine::DeleteStrategy;
using engine::InsertStrategy;

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  std::printf("# Ablation: rows scanned per single-subtree delete vs sf\n");
  std::printf("%-12s %8s %14s %14s\n", "method", "sf", "rows_scanned",
              "index_probes");
  for (int sf : {100, 200, 400, 800}) {
    workload::SyntheticSpec spec;
    spec.scaling_factor = sf;
    spec.depth = 8;
    spec.fanout = 1;
    auto gen = workload::GenerateFixedSynthetic(spec, 42);
    if (!gen.ok()) return 1;
    for (DeleteStrategy method : {DeleteStrategy::kPerTupleTrigger,
                                  DeleteStrategy::kPerStatementTrigger}) {
      uint64_t scanned = 0, probes = 0;
      for (int r = 0; r < runs; ++r) {
        auto store = bench::FreshStore(*gen, method, InsertStrategy::kTable);
        auto ids = store->SelectIds("n1", "");
        if (!ids.ok()) return 1;
        rdb::Stats before = store->stats();
        Status s = store->DeleteByIds("n1", {ids->front()});
        if (!s.ok()) std::abort();
        rdb::Stats delta = store->stats().Delta(before);
        scanned = delta.rows_scanned;
        probes = delta.index_probes;
      }
      std::printf("%-12s %8d %14llu %14llu\n", ToString(method), sf,
                  static_cast<unsigned long long>(scanned),
                  static_cast<unsigned long long>(probes));
    }
  }
  return 0;
}
