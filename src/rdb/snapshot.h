// Snapshot checkpoints: the full durable state of a Database serialized to
// one versioned binary file.
//
// A snapshot captures everything WAL replay needs a base for: the catalog of
// durable tables (schemas, every row slot including tombstones — row ids are
// physical WAL addresses, so dead slots keep their positions), hash-index
// definitions (contents are rebuilt from live rows on load), trigger
// definitions (as their original CREATE TRIGGER text), and the next-id
// counter. Ephemeral tables (engine scratch created through the direct
// catalog API) are excluded, exactly like they are excluded from the WAL.
//
// File format (little-endian):
//   "XUPDSNAP" (8 bytes) | u32 format version | payload | u32 CRC32
// where the CRC covers magic + version + payload, and the payload is
//   u64 epoch | i64 next_id | u64 wal_offset
//   u32 table count | per table:
//     str name | u32 column count | per column: str name, u8 type
//     u64 slot count | per slot: u8 live, one value per column
//     u32 index count | per index: str name, u32 column ordinal
//   u32 trigger count | per trigger: str CREATE TRIGGER sql
//
// Checkpoint atomicity: the snapshot is written to a temp file, fsynced,
// renamed over the previous snapshot, and the directory is fsynced — a crash
// leaves either the old or the new snapshot, never a torn one. Any mismatch
// on load (magic, version, CRC, truncation) is a clean Status error; a
// half-state is never installed.
#ifndef XUPD_RDB_SNAPSHOT_H_
#define XUPD_RDB_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "rdb/vfs.h"

namespace xupd::rdb {

class Database;
class Table;

/// Serializes `db`'s durable state with the given epoch, atomically
/// replacing whatever snapshot `path` held (via `tmp_path` + rename).
/// `wal_offset` records how far into the (same-epoch) WAL the snapshot
/// already incorporates: replay resumes applying after that byte offset.
/// Synchronous checkpoints truncate the WAL and pass 0.
/// `*renamed` (optional) reports whether the rename went through — on
/// failure it tells the caller whether the new-epoch snapshot is already
/// visible (the caller must then fail-stop its old-epoch WAL) or the old
/// state is still fully intact (safe to retry later).
Status WriteSnapshot(const Database& db, Vfs* vfs, const std::string& path,
                     const std::string& tmp_path, uint64_t epoch,
                     uint64_t wal_offset = 0, bool* renamed = nullptr);

/// Everything an off-thread checkpoint needs, captured by the writer at one
/// commit boundary: the pinned epoch whose row images the background thread
/// serializes, the matching next-id counter and committed WAL byte offset,
/// the snapshot-file epoch to stamp, and the exact slot count per durable
/// table at the capture instant. The writer keeps committing while the
/// background thread walks rows through Table::SnapshotReadRow at
/// `pin_epoch`; slots appended after the capture live past `wal_offset` in
/// the WAL, so serializing exactly the captured counts keeps replay's
/// append-only rowid invariant aligned.
struct CheckpointCapture {
  uint64_t pin_epoch = 0;
  int64_t next_id = 0;
  uint64_t wal_offset = 0;
  uint64_t epoch = 0;  // snapshot-header epoch (unchanged: WAL is kept).
  std::vector<std::pair<const Table*, size_t>> tables;  // (table, slot count)
  std::vector<std::string> trigger_sql;
};

/// Off-thread variant of WriteSnapshot: serializes the state as of
/// `capture` (a consistent MVCC snapshot at capture.pin_epoch) while the
/// writer thread continues to commit. Slots not visible at the pinned epoch
/// are written as tombstones with NULL cells — replay never reads a dead
/// slot's values. The caller must keep the captured tables alive (shared
/// catalog lock) and the pin held until this returns.
Status WriteSnapshotAsOf(const Database& db, Vfs* vfs, const std::string& path,
                         const std::string& tmp_path,
                         const CheckpointCapture& capture,
                         bool* renamed = nullptr);

/// What LoadSnapshot recovered from the snapshot header.
struct SnapshotLoadInfo {
  uint64_t epoch = 0;
  uint64_t wal_offset = 0;  // WAL bytes already folded into the snapshot.
};

/// Loads a snapshot into `db` (which must be freshly constructed: no tables,
/// no open transaction) and returns its header info.
Result<SnapshotLoadInfo> LoadSnapshot(Database* db, Vfs* vfs,
                                      const std::string& path);

/// Integrity scrub: re-checks the on-disk snapshot's magic, version, and
/// whole-file CRC without installing anything. Returns human-readable
/// violations (empty = clean); a missing file is clean (fresh database).
std::vector<std::string> VerifySnapshotFile(Vfs* vfs, const std::string& path);

/// The epoch recorded in the on-disk snapshot header, or 0 when the file is
/// missing or too short to carry one. Scrub helper (no CRC verification):
/// the WAL epoch check must accept a WAL already reset to the epoch of a
/// checkpoint whose old writer then fail-stopped.
uint64_t SnapshotEpochOnDisk(Vfs* vfs, const std::string& path);

}  // namespace xupd::rdb

#endif  // XUPD_RDB_SNAPSHOT_H_
