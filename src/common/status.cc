#include "common/status.h"

namespace xupd {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code());
  result += ": ";
  result += message();
  return result;
}

}  // namespace xupd
