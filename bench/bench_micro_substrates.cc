// Microbenchmarks (google-benchmark) for the substrates: SQL parsing, index
// probes, scans, XML parsing, XPath evaluation, shredding.
#include <benchmark/benchmark.h>

#include "rdb/database.h"
#include "rdb/sql_parser.h"
#include "shred/shredder.h"
#include "workload/synthetic.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/eval.h"
#include "xpath/parser.h"

using namespace xupd;

static void BM_SqlParseInsert(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = rdb::sql::ParseSql(
        "INSERT INTO Customer VALUES (42, 7, 'John', 'Seattle', 'WA')");
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_SqlParseInsert);

static void BM_SqlParseOuterUnion(benchmark::State& state) {
  const char* sql = R"(
    WITH Q1 (C1, C2, C3) AS (SELECT id, parentId, Name FROM Customer
                             WHERE Name = 'John'),
         Q2 (C1, C2, C3) AS (SELECT q.C1, O.id, O.Status FROM Q1 q, Ord O
                             WHERE O.parentId = q.C1)
    (SELECT * FROM Q1) UNION ALL (SELECT * FROM Q2) ORDER BY C1, C2)";
  for (auto _ : state) {
    auto stmt = rdb::sql::ParseSql(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_SqlParseOuterUnion);

static void BM_IndexProbe(benchmark::State& state) {
  rdb::Database db;
  (void)db.Execute("CREATE TABLE t (id INTEGER, v VARCHAR)");
  (void)db.Execute("CREATE INDEX t_id ON t (id)");
  rdb::Table* t = db.FindTable("t");
  for (int i = 0; i < 100000; ++i) {
    (void)db.InsertDirect(t, {rdb::Value::Int(i), rdb::Value::Str("x")});
  }
  int64_t i = 0;
  for (auto _ : state) {
    auto r = db.ExecuteQuery("SELECT v FROM t WHERE id = " +
                             std::to_string(i++ % 100000));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IndexProbe);

static void BM_FullScanCount(benchmark::State& state) {
  rdb::Database db;
  (void)db.Execute("CREATE TABLE t (id INTEGER, v VARCHAR)");
  rdb::Table* t = db.FindTable("t");
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    (void)db.InsertDirect(t, {rdb::Value::Int(i), rdb::Value::Str("x")});
  }
  for (auto _ : state) {
    auto r = db.ExecuteQuery("SELECT COUNT(*) FROM t WHERE v = 'x'");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullScanCount)->Arg(1000)->Arg(10000)->Arg(100000);

static void BM_XmlParseBioDoc(benchmark::State& state) {
  workload::SyntheticSpec spec{10, 4, 2};
  auto gen = workload::GenerateFixedSynthetic(spec, 1);
  std::string text = xml::Serialize(*gen->doc);
  for (auto _ : state) {
    auto doc = xml::ParseXml(text);
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_XmlParseBioDoc);

static void BM_XPathDescendantScan(benchmark::State& state) {
  workload::SyntheticSpec spec{100, 5, 2};
  auto gen = workload::GenerateFixedSynthetic(spec, 1);
  auto path = xpath::ParsePathString("document(\"d\")//n5");
  xpath::Evaluator eval(gen->doc.get());
  for (auto _ : state) {
    auto r = eval.Eval(path.value(), {}, xpath::XmlObject::Null());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_XPathDescendantScan);

static void BM_ShredDocument(benchmark::State& state) {
  workload::SyntheticSpec spec{100, 5, 2};
  auto gen = workload::GenerateFixedSynthetic(spec, 1);
  auto mapping = shred::Mapping::SharedInlining(gen->dtd);
  for (auto _ : state) {
    rdb::Database db;
    shred::Shredder shredder(&mapping.value(), &db);
    (void)shredder.CreateSchema();
    auto id = shredder.LoadDocument(*gen->doc, /*via_sql=*/false);
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_ShredDocument);

BENCHMARK_MAIN();
