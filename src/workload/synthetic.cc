#include "workload/synthetic.h"

#include <algorithm>

#include "common/rng.h"

namespace xupd::workload {

namespace {

std::string SyntheticDtdText(int depth) {
  std::string out = "<!ELEMENT doc (n1*)>\n";
  for (int k = 1; k <= depth; ++k) {
    std::string children = "s" + std::to_string(k) + ", v" + std::to_string(k);
    if (k < depth) children += ", n" + std::to_string(k + 1) + "*";
    out += "<!ELEMENT n" + std::to_string(k) + " (" + children + ")>\n";
    out += "<!ELEMENT s" + std::to_string(k) + " (#PCDATA)>\n";
    out += "<!ELEMENT v" + std::to_string(k) + " (#PCDATA)>\n";
  }
  return out;
}

// Builds one subtree node at level `k`; recurses to `depth` with `fanout`
// children per internal node (fanout may be a callback for randomization).
void BuildNode(xml::Element* parent, int k, int depth, int fanout, Rng* rng,
               size_t* count, bool randomized, int max_fanout) {
  auto node = std::make_unique<xml::Element>("n" + std::to_string(k));
  node->AppendSimpleChild("s" + std::to_string(k), rng->RandomString(50));
  node->AppendSimpleChild("v" + std::to_string(k),
                          std::to_string(rng->UniformRange(0, 999999)));
  ++*count;
  xml::Element* raw =
      static_cast<xml::Element*>(parent->AppendChild(std::move(node)));
  if (k < depth) {
    int f = randomized ? static_cast<int>(rng->UniformRange(1, max_fanout))
                       : fanout;
    for (int c = 0; c < f; ++c) {
      BuildNode(raw, k + 1, depth, fanout, rng, count, randomized, max_fanout);
    }
  }
}

Result<GeneratedDoc> GenerateSynthetic(const SyntheticSpec& spec, uint64_t seed,
                                       bool randomized) {
  if (spec.scaling_factor < 1 || spec.depth < 1 || spec.fanout < 1) {
    return Status::InvalidArgument("synthetic spec parameters must be >= 1");
  }
  GeneratedDoc out;
  out.dtd_text = SyntheticDtdText(spec.depth);
  auto dtd = xml::Dtd::Parse(out.dtd_text);
  if (!dtd.ok()) return dtd.status();
  out.dtd = std::move(dtd).value();

  Rng rng(seed);
  auto root = std::make_unique<xml::Element>("doc");
  size_t count = 1;  // the root tuple
  for (int s = 0; s < spec.scaling_factor; ++s) {
    int depth = spec.depth;
    if (randomized) {
      int min_depth = std::min(2, spec.depth);
      depth = static_cast<int>(rng.UniformRange(min_depth, spec.depth));
    }
    BuildNode(root.get(), 1, depth, spec.fanout, &rng, &count, randomized,
              spec.fanout);
  }
  out.doc = std::make_unique<xml::Document>(std::move(root));
  out.tuple_count = count;
  return out;
}

}  // namespace

Result<GeneratedDoc> GenerateFixedSynthetic(const SyntheticSpec& spec,
                                            uint64_t seed) {
  return GenerateSynthetic(spec, seed, /*randomized=*/false);
}

Result<GeneratedDoc> GenerateRandomizedSynthetic(const SyntheticSpec& spec,
                                                 uint64_t seed) {
  return GenerateSynthetic(spec, seed, /*randomized=*/true);
}

size_t FixedSyntheticTupleCount(const SyntheticSpec& spec) {
  size_t per_subtree = 0;
  size_t level = 1;
  for (int d = 0; d < spec.depth; ++d) {
    per_subtree += level;
    level *= static_cast<size_t>(spec.fanout);
  }
  return 1 + static_cast<size_t>(spec.scaling_factor) * per_subtree;
}

Result<GeneratedDoc> GenerateDblp(const DblpSpec& spec, uint64_t seed) {
  static const char kDblpDtd[] = R"(
<!ELEMENT dblp (conference*)>
<!ELEMENT conference (cname, publication*)>
<!ELEMENT publication (title, year, pages?, author*, cite*)>
<!ELEMENT cname (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT cite (#PCDATA)>
)";
  GeneratedDoc out;
  out.dtd_text = kDblpDtd;
  auto dtd = xml::Dtd::Parse(out.dtd_text);
  if (!dtd.ok()) return dtd.status();
  out.dtd = std::move(dtd).value();

  Rng rng(seed);
  auto root = std::make_unique<xml::Element>("dblp");
  size_t count = 1;
  int pub_serial = 0;
  for (int c = 0; c < spec.conferences; ++c) {
    auto conf = std::make_unique<xml::Element>("conference");
    conf->AppendSimpleChild("cname", "conf-" + std::to_string(c));
    ++count;
    int pubs =
        static_cast<int>(rng.UniformRange(spec.min_pubs, spec.max_pubs));
    for (int p = 0; p < pubs; ++p) {
      auto pub = std::make_unique<xml::Element>("publication");
      pub->AppendSimpleChild("title", "title-" + std::to_string(pub_serial) +
                                          "-" + rng.RandomString(24));
      pub->AppendSimpleChild(
          "year",
          std::to_string(rng.UniformRange(spec.min_year, spec.max_year)));
      if (rng.Uniform(2) == 0) {
        pub->AppendSimpleChild("pages",
                               std::to_string(rng.UniformRange(1, 500)));
      }
      ++count;
      int authors = static_cast<int>(
          rng.UniformRange(spec.min_authors, spec.max_authors));
      for (int a = 0; a < authors; ++a) {
        pub->AppendSimpleChild(
            "author", "author-" + std::to_string(rng.Uniform(5000)));
        ++count;
      }
      int cites =
          static_cast<int>(rng.UniformRange(spec.min_cites, spec.max_cites));
      for (int ci = 0; ci < cites; ++ci) {
        pub->AppendSimpleChild("cite",
                               "pub-" + std::to_string(rng.Uniform(100000)));
        ++count;
      }
      conf->AppendChild(std::move(pub));
      ++pub_serial;
    }
    root->AppendChild(std::move(conf));
  }
  out.doc = std::make_unique<xml::Document>(std::move(root));
  out.tuple_count = count;
  return out;
}

}  // namespace xupd::workload
