// Database: catalog of tables + AFTER DELETE triggers, and the SQL entry
// points. Every Execute/ExecuteQuery call parses its SQL text — statement
// issue overhead is part of the cost model the paper studies (§6: "issuing
// multiple separate SQL statements incurs overhead"). Prepare/ExecutePrepared
// model the JDBC PreparedStatement path: the text is parsed once, kept in an
// LRU cache keyed by SQL text, and later executions only bind parameter
// values (they still pay the simulated round-trip latency, but not the
// parse). Begin/Commit/Rollback expose the transaction subsystem (rdb/txn.h)
// that gives multi-statement XML update operations the all-or-nothing
// semantics the paper inherits from the relational engine (§6).
#ifndef XUPD_RDB_DATABASE_H_
#define XUPD_RDB_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/str_util.h"
#include "rdb/epoch.h"
#include "rdb/governance.h"
#include "rdb/planner.h"
#include "rdb/result.h"
#include "rdb/sql_ast.h"
#include "rdb/stats.h"
#include "rdb/table.h"
#include "rdb/txn.h"
#include "rdb/vfs.h"
#include "rdb/wal.h"

namespace xupd::rdb {

/// An immutable parsed statement. Handles stay valid after cache eviction or
/// invalidation (they are shared_ptrs); name resolution happens at plan
/// time, so a handle held across DDL simply re-plans against the new
/// catalog (the per-handle plan slot is version-guarded).
struct PreparedStatement {
  std::string sql;     ///< original text (also the cache key).
  sql::Statement stmt; ///< parsed form.
  int param_count = 0; ///< number of ? placeholders to bind.
  /// Cached plan for this statement (the plan cache hangs off the handle, so
  /// ExecutePrepared/ExecuteBound reuse it across calls and only bind
  /// parameters). Mutable: handles are shared as pointers-to-const.
  mutable PlanCacheSlot plan_slot;
};

using StatementHandle = std::shared_ptr<const PreparedStatement>;

/// Renders "INSERT INTO <table> VALUES (?, ...), (?, ...), ..." with `rows`
/// placeholder rows of `columns` placeholders each. Parameter values are
/// bound row-major. Constant for a fixed (table, columns, rows) shape, so
/// batched loads of the same batch size hit the prepared cache.
std::string MultiRowInsertSql(std::string_view table, size_t columns,
                              size_t rows);

class ReaderSession;

// ---------------------------------------------------------------------------
// Threading model
//
// The engine is single-writer / multi-reader:
//
//  * Exactly ONE thread (the "writer thread") may call any mutating or
//    transactional API — Execute*, Prepare, Begin/Commit/Rollback, the
//    direct catalog/bulk APIs, Checkpoint, TryHeal, and the knob setters.
//    Writer-side SELECTs also belong to the writer thread; they see the
//    latest in-memory state including uncommitted changes, exactly as
//    before.
//
//  * Any number of threads may each own a ReaderSession (OpenReaderSession,
//    up to EpochManager::kMaxReaders concurrently). A session executes
//    SELECT / EXPLAIN SELECT statements against an epoch snapshot: the
//    writer publishes a new epoch at every outermost commit boundary (each
//    top-level statement outside a transaction, or the outermost
//    COMMIT/ROLLBACK), a session pins the current epoch for the duration of
//    one statement (or explicitly via PinSnapshot/Unpin for a
//    multi-statement snapshot), and sees exactly the rows whose
//    [begin, end) epoch interval contains the pin — never an uncommitted or
//    torn row. Storage the writer supersedes (slab growth, pre-update row
//    images, cleared scratch slabs) is retired to the epoch manager and
//    freed only once no reader pins an epoch that could reach it, so reader
//    scans never take a lock on the data path.
//
//  * DDL is NOT snapshot-isolated: catalog changes (CREATE/DROP of tables,
//    indexes, triggers) take an exclusive catalog lock that waits out
//    in-flight reader statements; a pinned reader's NEXT statement sees the
//    new catalog (e.g. "table not found" after a drop). Reader sessions plan
//    with index probes disabled — hash indexes are writer-private — so
//    snapshot reads always scan.
//
//  * Two background threads may exist: the group-commit flusher (kBatched
//    durability; fsyncs the WAL every group_commit_window_us) and at most
//    one off-thread checkpoint (CheckpointBackground; serializes a pinned
//    epoch while the writer keeps committing). Both are managed internally
//    and joined by ~Database.
//
// Durability loss bounds per SyncMode, as observed after a crash (what
// ReplayWal recovers):
//
//  * kCommit  — an acknowledged commit is never lost (fsync before ack).
//  * kBatched — at most the acknowledged units of ONE group-commit window
//    (group_commit_window_us, default 2ms) are lost; a crash never yields a
//    torn or reordered unit, only a clean prefix of acknowledged commits.
//  * kNone    — acknowledged units survive process crashes (the OS page
//    cache holds appended records) but an OS/power crash may lose anything
//    since the last checkpoint or explicit Sync.
// ---------------------------------------------------------------------------

class Database {
 public:
  Database();
  /// Flushes and closes the WAL when durability is open (pending records of
  /// an open transaction are discarded — only committed units persist).
  ~Database();
  /// The TransactionManager and every undo record hold pointers into this
  /// object (stats, tables), so it is pinned in place.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- durability (rdb/wal.h, rdb/snapshot.h) ------------------------------
  //
  // Open(dir) turns the database durable: if `dir` holds a snapshot and/or
  // WAL from an earlier run, the snapshot is loaded and the WAL's committed
  // prefix replayed (a torn or uncommitted tail is discarded), otherwise the
  // directory is initialized fresh. From then on every committed unit of
  // work on *durable* tables — an outermost transaction commit, or each
  // top-level statement outside a transaction — is appended to the WAL as
  // logical redo records framed with length + CRC32 and a commit marker
  // carrying the next-id counter. Durable tables are those created through
  // SQL DDL (or recovered); engine scratch tables made through the direct
  // catalog API are ephemeral and bypass both WAL and snapshot. SQL DDL is
  // logged as its statement text and replayed by re-execution.

  /// Opens durability under `dir` (created if missing), recovering any
  /// existing state. Must be called on a fresh Database (no tables, no open
  /// transaction) and at most once.
  Status Open(const std::string& dir, const DurabilityOptions& options = {});
  /// True when the last Open found existing durable state (snapshot or
  /// committed WAL records).
  bool recovered() const { return recovered_; }
  bool durability_open() const { return wal_ != nullptr; }

  /// Serializes the full durable state (catalog, rows, tombstones, index
  /// and trigger definitions, next-id) to a fresh versioned snapshot and
  /// truncates the WAL. Rejected inside a transaction: a snapshot must not
  /// contain uncommitted effects. Blocks the writer for the whole write.
  Status Checkpoint();

  /// Off-thread checkpoint: captures the current commit boundary (pinning
  /// its epoch and recording the synced WAL offset), then serializes the
  /// snapshot on a background thread while the writer keeps committing. The
  /// WAL is NOT truncated — recovery loads the snapshot and replays only
  /// the WAL suffix past the recorded offset. Returns once the capture is
  /// done (fast); CheckpointWait() joins the serialization and reports its
  /// status. Rejected inside a transaction or while a background checkpoint
  /// is already running. A background-checkpoint failure is benign: the
  /// previous snapshot + full WAL still recover everything.
  Status CheckpointBackground();
  /// Joins an in-flight background checkpoint (no-op when none is running)
  /// and returns its final status.
  Status CheckpointWait();
  bool checkpoint_running() const { return checkpoint_running_; }

  /// Opens a concurrent read-only session (see the threading model above).
  /// Fails with kUnavailable when all EpochManager::kMaxReaders reader
  /// slots are taken — admission control, not a fault: the message carries a
  /// retry-after hint and the caller should close a session or retry after
  /// the suggested backoff. The session must not outlive the Database.
  Result<std::unique_ptr<ReaderSession>> OpenReaderSession();

  /// The epoch-based MVCC core (tests / benches: inspect the published
  /// epoch, pinned readers, and deferred-reclamation queue).
  EpochManager& epochs() { return epochs_; }

  /// Flushes pending redo as one committed unit when no transaction is
  /// open. The statement entry points call it at every top-level boundary
  /// (autocommit statements and their trigger cascades persist as one unit
  /// each); call it directly after direct bulk-API writes, which cross no
  /// statement boundary of their own. No-op when durability is off or a
  /// transaction is open.
  Status WalFlush();

  // --- graceful degradation ------------------------------------------------
  //
  // When the WAL writer fail-stops (append, fsync, or post-checkpoint reset
  // failure), the Database enters an explicit READ-ONLY mode instead of
  // surfacing opaque Internal errors forever: SELECT and EXPLAIN keep
  // serving the in-memory state, while DML/DDL against durable tables (and
  // the direct write APIs) return kUnavailable naming the original errno and
  // failed operation. Ephemeral scratch tables bypass the WAL and stay
  // writable. TryHeal() re-opens the data directory — discarding in-memory
  // effects that were never durable (they already surfaced as statement
  // errors) and rebuilding from the snapshot + committed WAL prefix — to
  // return to read-write once the underlying fault clears.

  struct Health {
    bool read_only = false;
    std::string cause;  ///< First failure (op + path + errno); "" if healthy.
    /// Background-thread watchdogs (see the resource-governance section):
    /// true when the group-commit flusher / background checkpointer has made
    /// no progress for watchdog_stall_windows() consecutive windows.
    bool flusher_stalled = false;
    bool checkpoint_stalled = false;
    bool degraded() const {
      return read_only || flusher_stalled || checkpoint_stalled;
    }
  };
  /// Current health, including lazy watchdog evaluation: the first call that
  /// observes a stalled background thread bumps watchdog.flusher_stalls /
  /// watchdog.checkpoint_stalls and records a kGovernance trace event.
  Health health() const;
  bool read_only() const { return read_only_.load(std::memory_order_acquire); }

  /// Attempts to return a read-only database to read-write: re-runs recovery
  /// from disk, retrying up to `max_attempts` times with exponential backoff.
  /// The backoff is bounded (capped at kMaxHealBackoffMs per attempt),
  /// interruptible (cancel_token() aborts the sleep with kCancelled), and
  /// observable (each attempt bumps the db.heal_attempts counter and each
  /// backoff records a kGovernance trace event annotated "heal_backoff").
  /// No-op when not read-only; rejected inside a transaction. On success the
  /// in-memory state equals the last committed-on-disk unit boundary.
  Status TryHeal(int max_attempts = 5);
  /// Upper bound on one TryHeal backoff sleep, milliseconds.
  static constexpr int kMaxHealBackoffMs = 100;

  /// Online integrity scrub (SQL: CHECK INTEGRITY). Walks every table
  /// checking slab liveness against hash-index entries in both directions,
  /// id columns against the next-id counter, that the undo log is empty
  /// outside transactions, and re-walks the WAL and snapshot files' CRCs.
  /// Returns human-readable violations; empty means the database is clean.
  std::vector<std::string> VerifyIntegrity();

  // --- resource governance (rdb/governance.h) ------------------------------
  //
  // Contract: a statement that exceeds its deadline, is cancelled, or pushes
  // memory past the hard budget fails with kDeadlineExceeded / kCancelled /
  // kResourceExhausted respectively, and ALL of its partial effects —
  // element-table rows, hash-index entries, version buffers, WAL pending
  // redo — are rolled back through the ordinary transaction machinery (the
  // engine wraps every multi-statement op in RunInTxn; a lone autocommit
  // statement unwinds via its own statement scope). The checks are
  // cooperative: every Volcano operator pull ticks an amortized governance
  // poll (ExecContext::TickGovernance, every 64th pull), and every statement
  // entry point polls once up front, so a runaway scan is cut within 64
  // pulls of the deadline and nothing is killed mid-mutation without undo.
  //
  //  * Deadlines: set_statement_timeout_us() arms a per-statement deadline
  //    for every later statement (SQL: SET STATEMENT_TIMEOUT <us>; 0
  //    clears); the Execute/ExecuteQuery overloads taking `timeout_us` arm a
  //    one-call deadline that overrides the global one. The simulated
  //    statement latency (SpinFor) is deadline-aware: an expired deadline
  //    cuts the spin short and fails the statement before it runs.
  //  * Cancellation: cancel_token() is shared with any thread; Cancel()
  //    makes the writer's (and every reader session's) next governance poll
  //    fail with kCancelled. The token stays cancelled until Reset() — it is
  //    a connection-level kill switch, not a one-shot.
  //  * Memory budgets: memory_accountant() meters table slabs, version
  //    buffers, the string interner, the undo log, WAL pending redo, and
  //    query scratch under mem.* gauges. A soft budget sheds NEW statements
  //    (kResourceExhausted before any work; COMMIT/ROLLBACK/RELEASE, SHOW,
  //    CHECK INTEGRITY and SET stay admitted so callers can always release
  //    resources and diagnose); a hard budget (and the WAL pending-buffer
  //    watermark) kills the RUNNING statement at its next poll, rolling the
  //    unit back.
  //  * Watchdogs: the group-commit flusher and background checkpointer
  //    stamp progress heartbeats; health() reports a thread stalled when it
  //    made no progress for watchdog_stall_windows() windows (flusher
  //    window = group_commit_window_us; checkpointer window =
  //    checkpoint_watchdog_window_us).

  /// Global per-statement timeout in microseconds; 0 (default) disables.
  /// Readable from reader sessions, hence atomic.
  void set_statement_timeout_us(int64_t us) {
    statement_timeout_us_.store(us < 0 ? 0 : us, std::memory_order_relaxed);
  }
  int64_t statement_timeout_us() const {
    return statement_timeout_us_.load(std::memory_order_relaxed);
  }

  /// Cross-thread cancellation switch (see the contract above).
  CancelToken& cancel_token() { return cancel_token_; }

  /// The per-Database memory accountant: budgets, watermark, mem.* gauges.
  MemoryAccountant& memory_accountant() { return mem_; }
  const MemoryAccountant& memory_accountant() const { return mem_; }

  /// Watchdog staleness threshold: a background thread is stalled after
  /// this many progress-free windows. Must be >= 1.
  void set_watchdog_stall_windows(int windows) {
    watchdog_stall_windows_ = windows < 1 ? 1 : windows;
  }
  int watchdog_stall_windows() const { return watchdog_stall_windows_; }
  /// The background checkpointer's watchdog window (it has no natural
  /// period like the flusher's group-commit window). Default 1s.
  void set_checkpoint_watchdog_window_us(int64_t us) {
    checkpoint_watchdog_window_us_ = us < 1 ? 1 : us;
  }
  int64_t checkpoint_watchdog_window_us() const {
    return checkpoint_watchdog_window_us_;
  }

  /// Engine-op deadline (engine/store.cc): arms an absolute MonotonicNanos
  /// deadline that bounds every statement of the current multi-statement
  /// operation (merged with per-statement deadlines; the earlier wins).
  /// 0 disarms. Writer thread only.
  void ArmOperationDeadline(uint64_t deadline_ns) {
    operation_deadline_ns_ = deadline_ns;
  }
  uint64_t operation_deadline_ns() const { return operation_deadline_ns_; }

  /// Test hook: fails the k-th operator pull (1-based) of subsequent
  /// execution with kCancelled — the cancellation-injection matrix drives
  /// it through every pull index. The counter keeps counting down below
  /// zero, so `k - remaining` doubles as a pull counter; arm with a huge k
  /// to count pulls without injecting. Disarm before verification queries.
  void ArmCancelAtPull(int64_t k) {
    cancel_at_pull_.store(k, std::memory_order_relaxed);
    cancel_at_pull_armed_ = true;
  }
  void DisarmCancelAtPull() { cancel_at_pull_armed_ = false; }
  int64_t cancel_at_pull_remaining() const {
    return cancel_at_pull_.load(std::memory_order_relaxed);
  }

  /// Parses and executes a DDL/DML statement.
  Status Execute(std::string_view sql);
  /// Per-call deadline overload: `timeout_us` (microseconds from now)
  /// overrides the global statement timeout for this one call; <= 0 means
  /// no deadline.
  Status Execute(std::string_view sql, int64_t timeout_us);

  /// Parses and executes a SELECT, returning its rows.
  Result<ResultSet> ExecuteQuery(std::string_view sql);
  Result<ResultSet> ExecuteQuery(std::string_view sql, int64_t timeout_us);

  /// Parses `sql` into a reusable handle, or returns the cached handle when
  /// the same text was prepared before (LRU, invalidated by DDL). DDL
  /// statements parse but are never cached. `cacheable = false` still probes
  /// the cache but never inserts on a miss — for one-shot texts (e.g. with
  /// inlined id lists) that would only evict reusable plans.
  Result<StatementHandle> Prepare(std::string_view sql, bool cacheable = true);

  /// Executes a prepared statement, binding `params` to its ? placeholders
  /// positionally. Pays the per-statement latency but skips the parse.
  Status ExecutePrepared(const StatementHandle& handle,
                         const std::vector<Value>& params = {});
  Result<ResultSet> ExecuteQueryPrepared(const StatementHandle& handle,
                                         const std::vector<Value>& params = {});

  /// Convenience: Prepare (served from the cache after the first call) then
  /// ExecutePrepared.
  Status ExecuteBound(std::string_view sql, const std::vector<Value>& params,
                      bool cacheable = true);
  Result<ResultSet> ExecuteQueryBound(std::string_view sql,
                                      const std::vector<Value>& params,
                                      bool cacheable = true);

  // --- transactions --------------------------------------------------------
  //
  // Begin/Commit/Rollback control an in-memory logical undo log (rdb/txn.h).
  // Nested Begin opens a savepoint scope: an inner Rollback undoes only that
  // scope's writes, an inner Commit merges them into the enclosing scope.
  // Rollback restores row liveness (tombstones), hash-index entries, updated
  // column values, and the next-id counter to their state at the matching
  // Begin. Trigger-issued writes log into the enclosing transaction like any
  // other write. These calls run inside the engine (no simulated statement
  // latency); the SQL statements BEGIN/COMMIT/ROLLBACK map onto them and pay
  // the usual per-statement cost.
  //
  // DDL-in-transaction policy: SQL DDL (CREATE/DROP of tables, indexes and
  // triggers) inside an active transaction is REJECTED with InvalidArgument
  // — catalog changes are not undoable, and silently auto-committing would
  // break the atomicity the engine layers rely on. The direct catalog APIs
  // below are exempt: they exist for engine-internal scratch tables (temp
  // staging for the §6.2.2 table insert, id-list probes), which are not
  // transactional state; DropTableDirect purges the dropped table's undo
  // records so the log never dangles. Direct catalog changes do not flush
  // the prepared-statement (parse) cache and do not bump the global catalog
  // version: DropTableDirect bumps the dropped table's per-table plan
  // version instead, so cached plans holding the dropped Table re-plan
  // while plans over other tables stay hot.

  /// Opens a transaction scope (a savepoint when one is already active).
  Status Begin();
  /// Commits the innermost scope; the outermost commit discards the log.
  Status Commit();
  /// Rolls back the innermost scope's writes in reverse order.
  Status Rollback();
  /// Opens a NAMED savepoint scope (SQL: SAVEPOINT name). Requires an
  /// active transaction — savepoints mark positions inside one.
  Status Savepoint(const std::string& name);
  /// Undoes every write since the innermost savepoint named `name` and
  /// keeps the savepoint open (SQL: ROLLBACK TO [SAVEPOINT] name).
  Status RollbackTo(const std::string& name);
  /// Merges the named savepoint (and scopes nested inside it) into its
  /// parent scope (SQL: RELEASE [SAVEPOINT] name).
  Status Release(const std::string& name);
  bool in_transaction() const { return txn_.active(); }
  size_t transaction_depth() const { return txn_.depth(); }
  /// Undo records currently held for open scopes (tests/benches).
  size_t undo_log_size() const { return txn_.undo_size(); }

  /// Failure injection (tests/benches): after `statements` further statement
  /// executions — counting trigger-body and nested statements — the next one
  /// fails with an Internal error, and the hook disarms. Negative cancels.
  void InjectFailureAfterStatements(int64_t statements) {
    fail_after_statements_ = statements;
  }

  /// Prepared-statement cache introspection (tests/benches).
  size_t prepared_cache_size() const { return cache_lru_.size(); }
  size_t prepared_cache_capacity() const { return cache_capacity_; }
  void set_prepared_cache_capacity(size_t capacity);

  /// Global catalog snapshot version guarding cached plans, bumped by every
  /// SQL DDL statement (including CREATE INDEX / DROP INDEX — plans capture
  /// index choices). A cached plan built under an older version is rebuilt
  /// before use. Direct catalog changes (DropTableDirect) no longer bump
  /// it: plans additionally carry per-table dependencies (see
  /// table_version), so §6.2.2 staging churn only invalidates plans that
  /// reference the dropped table.
  uint64_t catalog_version() const {
    return catalog_version_.load(std::memory_order_acquire);
  }

  /// Per-table plan-dependency counter, keyed by (case-insensitive) table
  /// name and persistent across drop/recreate of that name. The planner
  /// snapshots the counters of every table a plan touches; DropTableDirect
  /// bumps only the dropped table's counter, so cached plans over other
  /// tables stay hot. The handle stays valid after the table is gone —
  /// validation never dereferences a Table.
  std::shared_ptr<const uint64_t> table_version(std::string_view name);

  /// Planner knob (tests): when false, every plan uses full scans — the
  /// parity harness compares probed vs scanned execution. Toggling
  /// invalidates cached plans.
  bool planner_index_probes_enabled() const {
    return planner_index_probes_enabled_;
  }
  void set_planner_index_probes_enabled(bool enabled) {
    if (planner_index_probes_enabled_ != enabled) BumpCatalogVersion();
    planner_index_probes_enabled_ = enabled;
  }

  /// Direct bulk-load API (bypasses SQL): used by the shredder to load
  /// documents quickly; benchmark updates always go through Execute().
  /// `transactional = false` leaves the table unwired from the undo log —
  /// for engine scratch tables whose contents are not transactional state
  /// (writes to them are never undone and never logged). `durable = true`
  /// includes the table in WAL logging and snapshots (set by SQL CREATE
  /// TABLE and the snapshot loader; direct scratch tables stay ephemeral).
  Result<Table*> CreateTableDirect(TableSchema schema,
                                   bool transactional = true,
                                   bool durable = false);
  Status InsertDirect(Table* table, Row row);
  /// Drops a table from the catalog without SQL (exempt from the DDL txn
  /// barrier; see above). Also removes triggers on the table, purges its
  /// undo records, and bumps its per-table plan version (the global catalog
  /// version is untouched, so unrelated cached plans survive). Dropping a
  /// DURABLE table this way while both the WAL and a transaction are open
  /// is rejected — the drop is not undoable, so its WAL record could not
  /// roll back with the enclosing scope.
  Status DropTableDirect(std::string_view name);

  Table* FindTable(std::string_view name);
  const Table* FindTable(std::string_view name) const;
  std::vector<std::string> TableNames() const;

  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

  // --- observability (common/metrics.h) ------------------------------------
  //
  // Always-on latency attribution next to the Stats event counts. Four
  // surfaces, cheapest first:
  //
  //  * Histograms + counters: every statement records its wall time into a
  //    per-kind histogram (stmt.select / stmt.insert / stmt.delete /
  //    stmt.update / stmt.ddl / stmt.txn / stmt.explain / stmt.other, in
  //    nanoseconds); the WAL records wal.commit_unit and wal.fsync; the
  //    checkpoint/recovery/scrub paths record db.checkpoint, snapshot.write,
  //    db.recovery and db.scrub; outermost transactions record db.txn; and
  //    engine/store.cc operations record engine.<op> spans. SQL
  //    `SHOW METRICS` returns all of it — stats.* fields, registry counters
  //    (db.exec_ns, db.trigger_ns, engine.asr_ns), and <hist>.count/.p50_ns/
  //    .p95_ns/.p99_ns/.max_ns/.sum_ns rows — and `SHOW HEALTH` wraps
  //    health(). Per-statement overhead is two clock reads and a bucket
  //    increment; the cached-prepared CI budget holds with it on.
  //
  //  * EXPLAIN ANALYZE <stmt>: executes the statement and returns the plan
  //    annotated with per-operator actual rows / loops / time_us plus a
  //    final "Execution: rows=N time_us=T" summary. Trigger cascades run but
  //    are reported in db.trigger_ns, not in plan operators.
  //
  //  * Slow-statement log: set_slow_statement_threshold_us(t) captures every
  //    top-level statement at or above t microseconds — SQL text, Stats
  //    delta (including its cascade), and plan when one was built — into a
  //    bounded ring readable via slow_statements() or SQL `SHOW SLOW`.
  //    Threshold < 0 (default) disables capture entirely.
  //
  //  * Structured events: events() is a fixed-size ring of TraceEvent spans
  //    (statement / txn / WAL unit / fsync / checkpoint / recovery / scrub /
  //    engine op) with kind-specific payloads; `SHOW EVENTS` or
  //    events().DumpJson() exports it. bench/harness.h turns the histograms
  //    into the p50/p99 columns of bench JSON rows (e.g. commit_p50_us /
  //    commit_p99_us in the WAL ablation): medians of per-run samples, so
  //    single-run noise stays out of checked-in numbers.
  //
  //  * Causal trace spans: every TraceEvent additionally carries
  //    (tid, seq, trace_id, span_id, parent_span_id), stamped from the
  //    recording thread's trace::Context (common/metrics.h). The writer's
  //    statement span is the root; engine ops and WAL commit units nest
  //    under it via thread-local context, and the two cross-thread edges —
  //    commit unit -> group-commit flusher fsync, and writer-side
  //    checkpoint schedule -> background snapshot write — propagate via
  //    explicit trace::Handoff tokens captured on the producing thread and
  //    adopted by the consuming one. Background threads name themselves
  //    ("wal-flusher", "checkpoint") so exported tracks are labeled.
  //    events().DumpChromeTrace() (or SQL `SHOW TRACE`) renders the ring as
  //    Chrome/Perfetto trace-event JSON: per-thread named tracks, nested
  //    duration events, and flow arrows for every cross-thread handoff.
  //
  //  * Concurrency telemetry: the commit boundary maintains epoch.published
  //    and epoch.lag (published − min pinned, 0 when no reader is pinned)
  //    gauges, mvcc.version_rows / mvcc.version_bytes (pre-update images
  //    parked in table version buffers), mvcc.version_gc_rows and
  //    mvcc.slab_reclaims counters (epoch GC actually firing);
  //    readers.sessions gauges open reader sessions; catalog-lock
  //    acquisitions record shared/exclusive wait time into
  //    catalog_lock.shared_wait / catalog_lock.exclusive_wait histograms;
  //    and the batched flusher records group-commit batch size (fsync `a`
  //    payload) plus wal.window_occupancy_pct. Per-table/per-index access
  //    stats (scans, probes/hits, rows read/inserted/deleted/updated,
  //    version-buffer size) aggregate in Table and surface via SQL
  //    `SHOW TABLE STATS`. All of it is plain pre-resolved atomics on the
  //    hot path — the cached-prepared CI budget holds with it on.

  /// Mutable even on const Database: observability is not logical state
  /// (read-only paths like snapshot writing record their own timings).
  MetricsRegistry& metrics() const { return metrics_; }
  EventLog& events() const { return events_; }

  /// One captured slow statement (see the observability comment). A
  /// governance-killed statement (deadline / cancel / budget) is captured
  /// regardless of the threshold, with `cause` naming why and `delta`
  /// holding the partial work it did before the kill (rolled back).
  struct SlowStatement {
    std::string sql;           ///< original text ("" for unseen text).
    uint64_t duration_ns = 0;  ///< wall time including trigger cascade.
    Stats delta;               ///< stats delta over the statement.
    std::string plan;          ///< rendered plan ("" when none was built).
    std::string cause;  ///< "deadline_exceeded" / "cancelled" /
                        ///< "resource_exhausted"; "" for plain slow capture.
  };
  /// Capture threshold in microseconds; negative (default) disables the
  /// slow log and its per-statement stats snapshot.
  void set_slow_statement_threshold_us(double us) {
    slow_statement_threshold_us_ = us;
  }
  double slow_statement_threshold_us() const {
    return slow_statement_threshold_us_;
  }
  /// Captured entries, oldest first (bounded; oldest evicted).
  const std::vector<SlowStatement>& slow_statements() const {
    return slow_log_;
  }
  void clear_slow_statements() { slow_log_.clear(); }

  /// The per-Database string arena: long string values stored into any
  /// catalog table are deduplicated against it (rdb/value.h). Exposed for
  /// tests and memory introspection.
  StringInterner& interner() { return interner_; }

  /// Simulated per-statement issue latency (microseconds), applied to every
  /// Execute/ExecuteQuery/ExecutePrepared call — models the client/server
  /// round trip a 2001-era JDBC/DB2 stack pays per statement (trigger
  /// bodies run inside the engine and do NOT pay it; prepared statements
  /// pay the round trip but skip the parse). Default 0 (off); the Table 2
  /// bench uses it to reproduce the paper's cost regime (DESIGN.md).
  double statement_latency_us() const { return statement_latency_us_; }
  void set_statement_latency_us(double us) { statement_latency_us_ = us; }

  /// A next-id counter for the mapping layer (the paper's "systemwide next
  /// available id", §6.2.2).
  int64_t next_id() const { return next_id_; }
  void set_next_id(int64_t v) { next_id_ = v; }
  int64_t AllocateId() { return next_id_++; }
  /// Advances next_id by `count` and returns the first id of the block.
  int64_t AllocateIdBlock(int64_t count) {
    int64_t first = next_id_;
    next_id_ += count;
    return first;
  }

  struct TriggerDef {
    std::string name;
    std::string table;
    sql::TriggerGranularity granularity = sql::TriggerGranularity::kRow;
    std::vector<std::shared_ptr<sql::Statement>> body;
    /// Original CREATE TRIGGER text — how snapshots persist the trigger.
    std::string sql;
  };
  const std::vector<TriggerDef>& triggers() const { return triggers_; }

 private:
  friend class Executor;
  friend class ReaderSession;

  /// CREATE/DROP of any catalog object drops every cached parse (outstanding
  /// handles survive; re-Prepare of the same text is a miss) and bumps the
  /// catalog version, invalidating every cached plan.
  void InvalidateStatementCache();
  /// Invalidates cached plans only (catalog shape changed without SQL DDL,
  /// or the planner knob flipped). Clears the trigger-body plan map so its
  /// statement-pointer keys can never dangle across a version change.
  void BumpCatalogVersion();
  static bool IsDdl(const sql::Statement& stmt);

  /// Plan slot for a trigger-body statement (keyed by the shared Statement's
  /// identity; trigger bodies are stable shared_ptrs held by triggers_).
  PlanCacheSlot* TriggerPlanSlot(const sql::Statement* stmt) {
    return &trigger_plans_[stmt];
  }

  /// Returns the injected error when the failpoint counter runs out.
  Status ConsumeFailpoint();
  /// The DDL-in-transaction barrier (see the policy comment above).
  Status CheckDdlBarrier(const sql::Statement& stmt) const;
  /// The read-only gate: rejects DML/DDL against durable state with
  /// kUnavailable while degraded (SELECT, EXPLAIN, transaction control, and
  /// writes to ephemeral scratch tables pass).
  Status CheckWritable(const sql::Statement& stmt) const;
  /// kUnavailable naming the original fault, for rejected write paths.
  Status ReadOnlyError(const std::string& action) const;
  /// Flips into read-only mode recording the first cause (preferring the
  /// WAL writer's own broken-cause, which names op + path + errno).
  void EnterReadOnly(const Status& cause);
  /// Loads the snapshot, replays the WAL's committed prefix, and opens the
  /// writer under data_dir_. Requires an empty catalog; on failure partial
  /// state may linger (callers reset or stay read-only).
  Status RecoverFromDir();
  /// One TryHeal attempt: probe-recover into a scratch Database first (so an
  /// active fault cannot wreck the read-serving state), then rebuild this
  /// one from disk and reopen the WAL writer.
  Status ReopenFromDisk();

  /// Flushes the WAL's pending redo as one committed unit (carrying the
  /// current next-id). No-op when durability is off or nothing is pending.
  Status WalCommitUnit();
  /// Pends the text of a successfully executed DDL statement (called by the
  /// Executor; the unit is flushed at the statement boundary since DDL is
  /// barred inside transactions).
  void WalLogDdl(std::string_view sql_text);
  /// Shared tail of every statement entry point: runs the statement, then
  /// flushes the WAL at the top-level boundary (even on statement failure —
  /// without a transaction the partial effects stay in memory too). A
  /// statement error outranks a flush error; a flush error surfaces on an
  /// otherwise successful statement.
  Result<ResultSet> RunStatement(const sql::Statement& stmt,
                                 const std::vector<Value>* params,
                                 std::string_view sql_text,
                                 PlanCacheSlot* slot,
                                 uint64_t deadline_ns = 0);

  /// Absolute deadline for a statement entry point: `timeout_us` from now
  /// (0 = none) merged with any armed operation deadline (earlier wins).
  uint64_t EffectiveDeadline(int64_t timeout_us) const;
  /// Statement kinds that bypass admission/governance gates: resource
  /// RELEASING or diagnostic statements that must run even degraded
  /// (COMMIT/ROLLBACK/RELEASE, SHOW, CHECK INTEGRITY, SET).
  static bool GovernanceExempt(sql::Statement::Kind kind);
  /// The statement-entry governance gate: cancel flag, expired deadline,
  /// hard budget / WAL watermark, then soft-budget admission.
  Status GovernanceAdmission(uint64_t deadline_ns) const;
  /// Watchdog staleness checks (see health()); first observation of a stall
  /// bumps the counter and records a kGovernance trace event.
  bool FlusherStalled() const;
  bool CheckpointStalled() const;
  /// Bumps the per-table plan-dependency counter for `name`.
  void BumpTableVersion(std::string_view name);

  /// Publishes a new epoch at an outermost commit boundary, then reclaims
  /// retired storage / version-buffer images no pinned reader can reach.
  /// The no-garbage fast path is one atomic increment.
  void AdvanceEpochBoundary();

  /// Group-commit flusher lifecycle (kBatched durability).
  void StartFlusher();
  void StopFlusher();
  void FlusherLoop();

  /// Resolves the statement-kind histograms and hot counters once (ctor).
  void InitMetrics();
  /// Timed catalog-lock acquisition: records the wait into
  /// catalog_lock.exclusive_wait / catalog_lock.shared_wait. All catalog
  /// lock sites go through these so lock contention is always attributed.
  std::unique_lock<std::shared_mutex> LockCatalogExclusive() const;
  std::shared_lock<std::shared_mutex> LockCatalogShared() const;
  /// Histogram slot for a statement kind (see kStmtHistNames).
  static size_t StmtKindSlot(sql::Statement::Kind kind);
  /// Charges a finished trigger cascade's wall time (Executor calls this at
  /// cascade root; engine spans read the counter to decompose op cost).
  void AddTriggerNs(uint64_t ns) { *trigger_ns_ += ns; }

  /// Memory accountant every charge site (tables, interner, undo log, WAL
  /// pending, query scratch) reports into. Declared FIRST so it outlives
  /// every charging member — their destructors release their charges.
  MemoryAccountant mem_;
  /// String arena every table dedups long values against. Safe in any
  /// destruction order relative to tables_: interned Values carry their own
  /// references, so blocks outlive whichever of table or arena dies first.
  StringInterner interner_;
  /// Epoch-based MVCC core. Declared before tables_ so retired slab buffers
  /// (freed by the manager's destructor) outlive every Table.
  EpochManager epochs_;
  /// Catalog-shape lock: reader sessions hold it shared across one whole
  /// statement (plan + execute); catalog mutations (SQL DDL, direct
  /// create/drop, heal's state reset) take it exclusively. The writer's DML
  /// path never touches it — row visibility is MVCC's job.
  mutable std::shared_mutex catalog_mu_;
  /// Tables keyed by their original name, compared case-insensitively; the
  /// transparent comparator keeps FindTable allocation-free on the hot path.
  std::map<std::string, std::unique_ptr<Table>, AsciiCaseInsensitiveLess>
      tables_;
  std::vector<TriggerDef> triggers_;
  Stats stats_;
  TransactionManager txn_{&stats_};
  /// Observability state (see metrics()). Mutable: const read paths record
  /// timings too.
  mutable MetricsRegistry metrics_;
  mutable EventLog events_{1024};
  /// Per-statement-kind histograms, resolved once in InitMetrics.
  static constexpr size_t kStmtKindSlots = 8;
  Histogram* stmt_hists_[kStmtKindSlots] = {};
  /// Cumulative ns spent executing statements / trigger cascades (registry
  /// counters db.exec_ns / db.trigger_ns; engine spans diff them).
  std::atomic<uint64_t>* exec_ns_ = nullptr;
  std::atomic<uint64_t>* trigger_ns_ = nullptr;
  /// Concurrency-telemetry hooks, resolved once in InitMetrics (epoch/GC
  /// gauges live on epochs_; these cover the Database-owned surfaces).
  std::atomic<int64_t>* epoch_published_gauge_ = nullptr;
  std::atomic<int64_t>* version_rows_gauge_ = nullptr;
  std::atomic<int64_t>* version_bytes_gauge_ = nullptr;
  std::atomic<uint64_t>* version_gc_rows_ = nullptr;
  std::atomic<int64_t>* reader_sessions_gauge_ = nullptr;
  Histogram* catalog_shared_wait_ = nullptr;
  Histogram* catalog_exclusive_wait_ = nullptr;
  /// Governance counters, resolved once in InitMetrics (SHOW METRICS rows
  /// stmt.cancelled / stmt.deadline_exceeded / stmt.resource_exhausted /
  /// stmt.shed / db.heal_attempts / watchdog.*_stalls).
  std::atomic<uint64_t>* stmt_cancelled_ = nullptr;
  std::atomic<uint64_t>* stmt_deadline_exceeded_ = nullptr;
  std::atomic<uint64_t>* stmt_resource_exhausted_ = nullptr;
  std::atomic<uint64_t>* stmt_shed_ = nullptr;
  std::atomic<uint64_t>* heal_attempts_counter_ = nullptr;
  std::atomic<uint64_t>* flusher_stall_counter_ = nullptr;
  std::atomic<uint64_t>* checkpoint_stall_counter_ = nullptr;
  double slow_statement_threshold_us_ = -1;
  size_t slow_log_capacity_ = 32;
  std::vector<SlowStatement> slow_log_;
  /// Start of the outermost open transaction (db.txn span).
  uint64_t txn_start_ns_ = 0;
  int64_t next_id_ = 1;
  double statement_latency_us_ = 0;
  /// Failpoint countdown; negative = disarmed.
  int64_t fail_after_statements_ = -1;

  /// LRU prepared-statement cache: list front = most recently used; the
  /// index maps SQL text to its list node (transparent lookup, no copy).
  std::list<std::pair<std::string, StatementHandle>> cache_lru_;
  std::map<std::string, std::list<std::pair<std::string, StatementHandle>>::
                            iterator,
           std::less<>>
      cache_index_;
  size_t cache_capacity_ = 128;

  /// Plan-cache guard (see catalog_version()). Starts at 1 so a
  /// default-constructed PlanCacheSlot (version 0) never validates. Atomic:
  /// reader sessions validate cached plans against it; bumps that
  /// accompany a catalog mutation happen inside the exclusive section.
  std::atomic<uint64_t> catalog_version_{1};
  bool planner_index_probes_enabled_ = true;
  /// Cached plans for trigger-body statements. Entries are version-guarded
  /// like handle slots and the map is cleared on every version bump.
  std::map<const sql::Statement*, PlanCacheSlot> trigger_plans_;
  /// Per-table plan-dependency counters (see table_version()). Entries
  /// outlive their tables so drop/recreate of a name keeps counting up.
  /// Guarded by table_versions_mu_: reader-session planners insert entries
  /// concurrently with the writer.
  std::map<std::string, std::shared_ptr<uint64_t>, AsciiCaseInsensitiveLess>
      table_versions_;
  mutable std::mutex table_versions_mu_;

  // --- durability ----------------------------------------------------------
  std::string data_dir_;
  DurabilityOptions durability_options_;
  /// All durable file I/O goes through this (never null once Open ran).
  Vfs* vfs_ = nullptr;
  std::unique_ptr<WalWriter> wal_;
  bool recovered_ = false;
  /// flock'd <data_dir>/LOCK file guarding against two Databases sharing
  /// one WAL; null when durability is off. Released by ~Database.
  std::unique_ptr<VfsFile> lock_file_;
  /// Degraded mode (see health()). Atomic so the flag itself is readable
  /// off-thread; the cause string is writer-thread state.
  std::atomic<bool> read_only_{false};
  std::string read_only_cause_;

  // --- resource governance -------------------------------------------------
  /// Connection-level kill switch (see cancel_token()).
  CancelToken cancel_token_;
  /// Global statement timeout (µs); atomic — reader sessions read it.
  std::atomic<int64_t> statement_timeout_us_{0};
  /// Absolute deadline of the engine op in flight (0 = none); writer only.
  uint64_t operation_deadline_ns_ = 0;
  /// Cancellation-injection hook (see ArmCancelAtPull).
  std::atomic<int64_t> cancel_at_pull_{0};
  bool cancel_at_pull_armed_ = false;
  /// Watchdog knobs (see the governance section).
  int watchdog_stall_windows_ = 8;
  int64_t checkpoint_watchdog_window_us_ = 1000000;
  /// Progress heartbeats, stamped by the background threads themselves and
  /// read by health(); 0 = thread not started.
  std::atomic<uint64_t> flusher_heartbeat_ns_{0};
  std::atomic<uint64_t> checkpoint_heartbeat_ns_{0};
  /// Set by the checkpoint thread at exit: a finished-but-unjoined
  /// checkpoint (checkpoint_running_ stays true until CheckpointWait) is
  /// progress, not a stall.
  std::atomic<bool> checkpoint_done_{false};
  /// Stall-episode latches: the counter/trace event fire once per episode,
  /// not on every health() poll. Mutable — health() is const.
  mutable std::atomic<bool> flusher_stall_reported_{false};
  mutable std::atomic<bool> checkpoint_stall_reported_{false};

  // --- background threads --------------------------------------------------
  /// Group-commit flusher (kBatched): fsyncs the WAL every
  /// group_commit_window_us. flusher_mu_ additionally guards wal_ pointer
  /// swaps (Checkpoint / ReopenFromDisk) against the flusher dereference.
  std::thread flusher_;
  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_ = false;

  /// At most one background checkpoint (CheckpointBackground). The writer
  /// thread owns this state; the spawned thread writes checkpoint_status_ /
  /// checkpoint_renamed_ before exiting and they are read after join.
  std::thread checkpoint_thread_;
  Status checkpoint_status_;
  bool checkpoint_renamed_ = false;
  int checkpoint_slot_ = -1;
  bool checkpoint_running_ = false;
};

/// A concurrent read-only SQL session over epoch snapshots (see the
/// threading model in this header). Obtained from
/// Database::OpenReaderSession; owned by exactly one thread; must not
/// outlive the Database.
///
/// Each ExecuteQuery* call pins the current epoch for the duration of that
/// statement, unless PinSnapshot() opened an explicit multi-statement
/// snapshot (then every statement reads the same pinned epoch until
/// Unpin()). Only SELECT and EXPLAIN SELECT are accepted. The session keeps
/// its own Stats (rows_scanned etc.) and plan cache — nothing here touches
/// the writer's counters.
class ReaderSession {
 public:
  ~ReaderSession();
  ReaderSession(const ReaderSession&) = delete;
  ReaderSession& operator=(const ReaderSession&) = delete;

  Result<ResultSet> ExecuteQuery(std::string_view sql);
  Result<ResultSet> ExecuteQueryBound(std::string_view sql,
                                      const std::vector<Value>& params);

  /// Pins the current epoch until Unpin(): every subsequent statement reads
  /// this one snapshot, and the writer retains superseded row versions the
  /// snapshot can still reach. Returns the pinned epoch. No-op (returning
  /// the existing pin) when already pinned.
  uint64_t PinSnapshot();
  void Unpin();
  bool pinned() const { return explicit_pin_; }

  /// This session's private event counters (rows_scanned, plans_built, ...).
  const Stats& stats() const { return stats_; }

 private:
  friend class Database;
  ReaderSession(Database* db, int slot) : db_(db), slot_(slot) {}

  /// Per-session cached plan keyed by SQL text (validated against the
  /// catalog version and per-table dependency counters like writer-side
  /// handle slots).
  struct CachedPlan {
    sql::Statement stmt;
    int param_count = 0;
    std::shared_ptr<const PlannedStatement> plan;
    uint64_t version = 0;
  };

  Result<ResultSet> Run(std::string_view sql, const std::vector<Value>* params);

  Database* db_;
  int slot_;
  Stats stats_;
  uint64_t pin_epoch_ = 0;  ///< valid while explicit_pin_.
  bool explicit_pin_ = false;
  std::map<std::string, CachedPlan, std::less<>> plan_cache_;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_DATABASE_H_
