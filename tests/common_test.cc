// Tests for the common module: Status/Result, string utilities, RNG.
#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace xupd {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("line 3: boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "line 3: boom");
  EXPECT_EQ(s.ToString(), "ParseError: line 3: boom");
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  Status a = Status::NotFound("x");
  Status b = a;
  EXPECT_EQ(a, b);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  XUPD_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x * 2;
}

Result<int> UsesAssignOrReturn(int x) {
  XUPD_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, ValueAndStatusPaths) {
  auto ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  auto bad = ParsePositive(0);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.value_or(-7), -7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(UsesAssignOrReturn(5).value(), 11);
  EXPECT_FALSE(UsesAssignOrReturn(-5).ok());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 9);
}

TEST(StrUtilTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a  bb\tc\n"),
            (std::vector<std::string>{"a", "bb", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StrUtilTest, JoinAndSplitChar) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(SplitChar("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StrUtilTest, CaseHelpers) {
  EXPECT_EQ(AsciiToLower("AbC"), "abc");
  EXPECT_EQ(AsciiToUpper("aBc"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StrUtilTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(StrUtilTest, SqlQuote) {
  EXPECT_EQ(SqlQuote("abc"), "'abc'");
  EXPECT_EQ(SqlQuote("John's"), "'John''s'");
  EXPECT_EQ(SqlQuote(""), "''");
}

TEST(StrUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-9", &v));
  EXPECT_EQ(v, -9);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64(" 1", &v));
}

TEST(StrUtilTest, StripAndAffixes) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(EndsWith("abcdef", "def"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 10; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  EXPECT_NE(Rng(7).Next(), c.Next());
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, RandomStringShapeAndLength) {
  Rng rng(3);
  std::string s = rng.RandomString(50);
  EXPECT_EQ(s.size(), 50u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace xupd
