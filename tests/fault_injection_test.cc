// Storage fault-injection tests (rdb/vfs.h FaultVfs): the headline
// robustness property of the durability subsystem. For EIO / ENOSPC /
// power-loss faults injected at EVERY k-th mutating file operation of a
// representative workload, the database must (a) surface a clean error,
// (b) keep its in-memory and on-disk invariants (VerifyIntegrity /
// VerifyStore find nothing), (c) recover onto exactly a committed unit
// boundary, and (d) resume writes through TryHeal() once the fault clears.
// Transient EINTR / short-write faults must be absorbed by the retry loop
// without the workload ever noticing. Also covers the degraded (read-only)
// mode contract, stale snapshot.tmp cleanup, and SQL CHECK INTEGRITY.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/store.h"
#include "rdb/database.h"
#include "rdb/vfs.h"
#include "workload/synthetic.h"

namespace xupd {
namespace {

using engine::DeleteStrategy;
using engine::InsertStrategy;
using engine::RelationalStore;
using rdb::FaultVfs;
using FaultKind = rdb::FaultVfs::FaultKind;

// ---------------------------------------------------------------------------
// Helpers (mirrors recovery_test.cc — each test binary is self-contained)

/// A scratch data directory, removed (with its contents) on destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/xupd_fault_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path_ = p == nullptr ? "/tmp/xupd_fault_fallback" : p;
  }
  ~TempDir() {
    DIR* d = ::opendir(path_.c_str());
    if (d != nullptr) {
      while (dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        std::remove((path_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// Renders the full durable state of a database as one comparable string
/// (same rendering as recovery_test.cc).
std::string DumpDurableState(const rdb::Database& db) {
  std::string out = "next_id=" + std::to_string(db.next_id()) + "\n";
  for (const std::string& name : db.TableNames()) {
    const rdb::Table* t = db.FindTable(name);
    if (t == nullptr || !t->durable()) continue;
    out += "table " + t->schema().name() + " (";
    for (const auto& c : t->schema().columns()) out += c.name + ",";
    out += ")\n";
    for (size_t rowid = 0; rowid < t->capacity(); ++rowid) {
      out += t->is_live(rowid) ? "  live " : "  dead ";
      for (const rdb::Value& v : t->row_span(rowid)) out += v.ToString() + "|";
      out += "\n";
    }
    for (const auto& index : t->indexes()) {
      out += "  index " + index->name() + " col " +
             std::to_string(index->column()) + " size " +
             std::to_string(index->size()) + "\n";
    }
  }
  return out;
}

bool IsBoundaryState(const std::string& got,
                     const std::vector<std::string>& states) {
  for (const std::string& state : states) {
    if (got == state) return true;
  }
  return false;
}

rdb::DurabilityOptions FaultOptions(FaultVfs* fault) {
  rdb::DurabilityOptions opts;
  // Power-loss recovery must land on a commit boundary, so every unit is
  // synced (what survives the simulated outage IS the committed prefix).
  opts.sync_mode = rdb::SyncMode::kCommit;
  opts.vfs = fault;
  return opts;
}

/// The fault-matrix workload: DDL, autocommit DML, a committed transaction,
/// update/delete, a checkpoint, and a rolled-back transaction — every WAL
/// and snapshot code path a fig. 6/10 run exercises. "@checkpoint" marks a
/// Database::Checkpoint() call.
const std::vector<std::string>& WorkloadSteps() {
  static const std::vector<std::string> steps = {
      "CREATE TABLE t (id INTEGER, name VARCHAR)",
      "CREATE INDEX idx_t_id ON t (id)",
      "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')",
      "BEGIN",
      "INSERT INTO t VALUES (4, 'd')",
      "INSERT INTO t VALUES (5, 'e')",
      "COMMIT",
      "UPDATE t SET name = 'z' WHERE id = 2",
      "DELETE FROM t WHERE id = 3",
      "@checkpoint",
      "INSERT INTO t VALUES (6, 'f')",
      "BEGIN",
      "INSERT INTO t VALUES (7, 'g')",
      "ROLLBACK",
      "INSERT INTO t VALUES (8, 'h')",
  };
  return steps;
}

/// Runs the workload, stopping at the first error. When `states` is given,
/// records the durable state at every commit-unit boundary (outside any
/// transaction) — the only states a recovery may legally land on.
Status RunWorkload(rdb::Database* db, std::vector<std::string>* states) {
  if (states != nullptr) states->push_back(DumpDurableState(*db));
  for (const std::string& step : WorkloadSteps()) {
    Status s = step == "@checkpoint" ? db->Checkpoint() : db->Execute(step);
    if (!s.ok()) return s;
    if (states != nullptr && !db->in_transaction()) {
      states->push_back(DumpDurableState(*db));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// The rdb fault matrix (tentpole acceptance test)

struct CleanSchedule {
  std::vector<std::string> states;  ///< Every commit-boundary durable state.
  int total_ops = 0;                ///< Mutating file ops of one clean run.
};

CleanSchedule RunClean() {
  CleanSchedule clean;
  TempDir dir;
  FaultVfs fault(rdb::Vfs::Default());
  rdb::Database db;
  // Unarmed FaultVfs still counts mutating ops: the clean run yields the
  // deterministic op schedule the matrix below indexes into.
  Status open = db.Open(dir.path(), FaultOptions(&fault));
  EXPECT_TRUE(open.ok()) << open;
  Status s = RunWorkload(&db, &clean.states);
  EXPECT_TRUE(s.ok()) << s;
  clean.total_ops = fault.mutating_ops();
  EXPECT_GT(clean.total_ops, 10);
  return clean;
}

void RunFaultMatrix(FaultKind kind, const CleanSchedule& clean) {
  for (int k = 1; k <= clean.total_ops; ++k) {
    SCOPED_TRACE("fault at mutating op " + std::to_string(k));
    TempDir dir;
    FaultVfs fault(rdb::Vfs::Default());
    if (kind == FaultKind::kPowerLoss) fault.set_torn_tail_bytes(3);
    fault.ArmFault(kind, k);
    rdb::Database db;
    Status open = db.Open(dir.path(), FaultOptions(&fault));
    if (!open.ok()) {
      // (a) Open itself hit the fault: clean error, and once the fault
      // clears a fresh open must land on a committed boundary (here: the
      // empty database).
      EXPECT_FALSE(open.message().empty());
      fault.ClearFault();
      rdb::Database db2;
      Status reopen = db2.Open(dir.path(), FaultOptions(&fault));
      ASSERT_TRUE(reopen.ok()) << reopen;
      EXPECT_TRUE(IsBoundaryState(DumpDurableState(db2), clean.states));
      EXPECT_TRUE(db2.VerifyIntegrity().empty());
      continue;
    }
    Status s = RunWorkload(&db, nullptr);
    if (s.ok()) continue;  // the fault fired on an absorbed/benign op
    // (a) Clean, descriptive error.
    EXPECT_FALSE(s.message().empty());
    if (db.in_transaction()) (void)db.Rollback();
    // (b) Invariants hold right now — even mid-fault, the scrub is
    // read-only and must pass.
    std::vector<std::string> violations = db.VerifyIntegrity();
    EXPECT_TRUE(violations.empty())
        << "after fault: " << (violations.empty() ? "" : violations[0]);
    if (db.read_only()) {
      EXPECT_FALSE(db.health().cause.empty());
      // Degraded contract: writes are rejected with kUnavailable while the
      // fault persists, reads keep working.
      Status rejected = db.Execute("INSERT INTO t VALUES (99, 'rejected')");
      EXPECT_EQ(rejected.code(), StatusCode::kUnavailable) << rejected;
      fault.ClearFault();
      // (d) TryHeal returns to read-write once the fault clears...
      Status heal = db.TryHeal();
      ASSERT_TRUE(heal.ok()) << heal;
      EXPECT_FALSE(db.read_only());
    } else {
      // Retryable failure (e.g. a checkpoint that never renamed its tmp
      // file): the database stays read-write.
      fault.ClearFault();
    }
    // (c) ...and the recovered state is exactly a committed unit boundary.
    std::string got = DumpDurableState(db);
    bool on_boundary = IsBoundaryState(got, clean.states);
    if (!on_boundary && !db.read_only()) {
      // A power-loss fault can kill the WAL handle without any statement
      // noticing until the next write; force the heal path and re-check.
      Status poke = db.Execute("DELETE FROM t WHERE id = 0");
      if (!poke.ok() && db.read_only()) {
        ASSERT_TRUE(db.TryHeal().ok());
        got = DumpDurableState(db);
        on_boundary = IsBoundaryState(got, clean.states);
      }
    }
    EXPECT_TRUE(on_boundary) << "recovered a non-boundary state:\n" << got;
    EXPECT_TRUE(db.VerifyIntegrity().empty());
    // (d) Writes resume for real.
    if (db.FindTable("t") == nullptr) {
      ASSERT_TRUE(
          db.Execute("CREATE TABLE t (id INTEGER, name VARCHAR)").ok());
    }
    Status resumed = db.Execute("INSERT INTO t VALUES (100, 'resumed')");
    if (!resumed.ok()) {
      // Dead power-loss handle surfacing on first use: one heal allowed.
      ASSERT_TRUE(db.read_only()) << resumed;
      ASSERT_TRUE(db.TryHeal().ok());
      ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (100, 'resumed')").ok());
    }
    EXPECT_TRUE(db.VerifyIntegrity().empty());
  }
}

TEST(RdbFaultMatrixTest, EioAtEveryMutatingOp) {
  RunFaultMatrix(FaultKind::kEio, RunClean());
}

TEST(RdbFaultMatrixTest, EnospcAtEveryMutatingOp) {
  RunFaultMatrix(FaultKind::kEnospc, RunClean());
}

TEST(RdbFaultMatrixTest, PowerLossAtEveryMutatingOp) {
  RunFaultMatrix(FaultKind::kPowerLoss, RunClean());
}

TEST(RdbFaultMatrixTest, TransientEintrAndShortWritesAreAbsorbed) {
  // EINTR and short writes are not failures: WriteFully's bounded retry loop
  // must absorb them with the workload none the wiser.
  for (FaultKind kind : {FaultKind::kEintr, FaultKind::kShortWrite}) {
    CleanSchedule clean = RunClean();
    for (int k = 1; k <= clean.total_ops; k += 3) {
      SCOPED_TRACE("transient fault at op " + std::to_string(k));
      TempDir dir;
      FaultVfs fault(rdb::Vfs::Default());
      fault.ArmFault(kind, k);
      rdb::Database db;
      ASSERT_TRUE(db.Open(dir.path(), FaultOptions(&fault)).ok());
      Status s = RunWorkload(&db, nullptr);
      EXPECT_TRUE(s.ok()) << s;
      EXPECT_FALSE(db.read_only());
      EXPECT_TRUE(db.VerifyIntegrity().empty());
      EXPECT_TRUE(
          IsBoundaryState(DumpDurableState(db), clean.states));
    }
  }
}

// ---------------------------------------------------------------------------
// Degraded (read-only) mode contract

TEST(ReadOnlyModeTest, ReadsServeWritesRejectHealRestores) {
  TempDir dir;
  FaultVfs fault(rdb::Vfs::Default());
  rdb::Database db;
  ASSERT_TRUE(db.Open(dir.path(), FaultOptions(&fault)).ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER, name VARCHAR)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'a')").ok());

  // Break the WAL on the next append.
  fault.ArmFault(FaultKind::kEio, 1, "wal");
  Status broken = db.Execute("INSERT INTO t VALUES (2, 'b')");
  ASSERT_FALSE(broken.ok());
  ASSERT_TRUE(db.read_only());
  rdb::Database::Health h = db.health();
  EXPECT_TRUE(h.read_only);
  EXPECT_NE(h.cause.find("EIO"), std::string::npos) << h.cause;

  // Reads keep serving the in-memory state (which includes the statement
  // whose memory effects landed before its WAL unit failed).
  auto rows = db.ExecuteQuery("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->rows[0][0].AsInt(), 2);
  EXPECT_TRUE(db.ExecuteQuery("EXPLAIN SELECT * FROM t WHERE id = 1").ok());
  auto scrub = db.ExecuteQuery("CHECK INTEGRITY");
  ASSERT_TRUE(scrub.ok()) << scrub.status();

  // Writes to durable state are rejected with kUnavailable naming the
  // original fault and the healing path.
  Status ins = db.Execute("INSERT INTO t VALUES (3, 'c')");
  EXPECT_EQ(ins.code(), StatusCode::kUnavailable);
  EXPECT_NE(ins.message().find("read-only"), std::string::npos) << ins;
  EXPECT_NE(ins.message().find("EIO"), std::string::npos) << ins;
  EXPECT_NE(ins.message().find("TryHeal"), std::string::npos) << ins;
  EXPECT_EQ(db.Execute("CREATE TABLE u (id INTEGER)").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(db.Execute("DELETE FROM t WHERE id = 1").code(),
            StatusCode::kUnavailable);

  // Ephemeral scratch tables bypass the WAL and stay writable.
  auto scratch = db.CreateTableDirect(
      rdb::TableSchema("scratch", {{"id", rdb::ColumnType::kInteger}}),
      /*transactional=*/false);
  ASSERT_TRUE(scratch.ok()) << scratch.status();
  EXPECT_TRUE(db.InsertDirect(scratch.value(), {rdb::Value::Int(7)}).ok());

  // Healing is refused while the fault persists (kEio keeps failing)...
  EXPECT_FALSE(db.TryHeal(2).ok());
  EXPECT_TRUE(db.read_only());

  // ...and succeeds once it clears, discarding the never-durable row.
  fault.ClearFault();
  Status heal = db.TryHeal();
  ASSERT_TRUE(heal.ok()) << heal;
  EXPECT_FALSE(db.read_only());
  EXPECT_TRUE(db.health().cause.empty());
  rows = db.ExecuteQuery("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0].AsInt(), 1);
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (2, 'b2')").ok());
  EXPECT_GE(db.stats().heal_attempts, 1u);
  EXPECT_TRUE(db.VerifyIntegrity().empty());
}

// ---------------------------------------------------------------------------
// Engine fault matrix: the paper's fig. 6 (bulk delete) and fig. 10 (bulk
// copy) operations under injected faults.

workload::GeneratedDoc MakeDoc() {
  workload::SyntheticSpec spec;
  spec.scaling_factor = 6;
  spec.depth = 3;
  spec.fanout = 2;
  auto gen = workload::GenerateFixedSynthetic(spec, 42);
  EXPECT_TRUE(gen.ok());
  return std::move(gen).value();
}

std::unique_ptr<RelationalStore> MakeFaultStore(
    const workload::GeneratedDoc& gen, const std::string& dir,
    DeleteStrategy del, InsertStrategy ins, FaultVfs* fault) {
  RelationalStore::Options options;
  options.delete_strategy = del;
  options.insert_strategy = ins;
  options.durability = true;
  options.data_dir = dir;
  options.sync_mode = rdb::SyncMode::kCommit;
  options.vfs = fault;
  auto store = RelationalStore::Create(gen.dtd, options);
  EXPECT_TRUE(store.ok()) << store.status();
  if (!store.ok()) return nullptr;
  if (!store.value()->recovered()) {
    Status s = store.value()->Load(*gen.doc);
    EXPECT_TRUE(s.ok()) << s;
  }
  return std::move(store).value();
}

using EngineOp = std::function<Status(RelationalStore*)>;

struct EngineCase {
  const char* name;
  DeleteStrategy del;
  InsertStrategy ins;
  EngineOp op;
};

std::vector<EngineCase> EngineCases() {
  return {
      {"fig6-bulk-delete", DeleteStrategy::kPerTupleTrigger,
       InsertStrategy::kTable,
       [](RelationalStore* s) { return s->DeleteWhere("n2", "v2 > 500000"); }},
      {"fig10-bulk-copy", DeleteStrategy::kCascade, InsertStrategy::kTable,
       [](RelationalStore* s) {
         return s->CopySubtreesWhere("n2", "v2 < 300000", s->root_id());
       }},
      {"delete-then-checkpoint", DeleteStrategy::kCascade,
       InsertStrategy::kTable,
       [](RelationalStore* s) {
         Status d = s->DeleteWhere("n3", "v3 < 400000");
         if (!d.ok()) return d;
         return s->Checkpoint();
       }},
  };
}

TEST(EngineFaultMatrixTest, UpdateOperationsSurviveInjectedFaults) {
  workload::GeneratedDoc gen = MakeDoc();
  for (const EngineCase& ec : EngineCases()) {
    SCOPED_TRACE(ec.name);
    // Clean run: pre/post states and the op's mutating-op count (the
    // deterministic fault schedule).
    std::string pre;
    std::string post;
    int total_ops = 0;
    {
      TempDir dir;
      FaultVfs fault(rdb::Vfs::Default());
      auto store = MakeFaultStore(gen, dir.path(), ec.del, ec.ins, &fault);
      ASSERT_NE(store, nullptr);
      pre = DumpDurableState(*store->db());
      int before = fault.mutating_ops();
      Status s = ec.op(store.get());
      ASSERT_TRUE(s.ok()) << s;
      total_ops = fault.mutating_ops() - before;
      post = DumpDurableState(*store->db());
      EXPECT_TRUE(store->VerifyStore().empty());
    }
    ASSERT_GT(total_ops, 0);
    const int step = std::max(1, total_ops / 20);
    for (FaultKind kind : {FaultKind::kEio, FaultKind::kPowerLoss}) {
      for (int k = 1; k <= total_ops; k += step) {
        SCOPED_TRACE("kind " + std::to_string(static_cast<int>(kind)) +
                     " fault at op " + std::to_string(k));
        TempDir dir;
        FaultVfs fault(rdb::Vfs::Default());
        auto store = MakeFaultStore(gen, dir.path(), ec.del, ec.ins, &fault);
        ASSERT_NE(store, nullptr);
        ASSERT_EQ(DumpDurableState(*store->db()), pre);
        fault.ArmFault(kind, k);
        Status s = ec.op(store.get());
        fault.ClearFault();
        rdb::Database* db = store->db();
        if (db->in_transaction()) (void)db->Rollback();
        if (s.ok()) {
          EXPECT_TRUE(store->VerifyStore().empty());
          continue;
        }
        // (a) clean error; (b) both scrub layers pass immediately.
        EXPECT_FALSE(s.message().empty());
        std::vector<std::string> ev = store->VerifyStore();
        EXPECT_TRUE(ev.empty()) << ev[0];
        std::vector<std::string> rv = db->VerifyIntegrity();
        EXPECT_TRUE(rv.empty()) << rv[0];
        if (db->read_only()) {
          Status heal = db->TryHeal();
          ASSERT_TRUE(heal.ok()) << heal;
          EXPECT_FALSE(db->read_only());
        }
        // (c) the durable state is exactly the pre-op or post-op boundary.
        std::string got = DumpDurableState(*db);
        EXPECT_TRUE(got == pre || got == post)
            << "fault left a non-boundary state";
        EXPECT_TRUE(store->VerifyStore().empty());
        EXPECT_TRUE(db->VerifyIntegrity().empty());
        // (d) the operation can be re-issued to completion.
        if (got == pre) {
          Status retry = ec.op(store.get());
          if (!retry.ok() && db->read_only()) {
            ASSERT_TRUE(db->TryHeal().ok());
            retry = ec.op(store.get());
          }
          EXPECT_TRUE(retry.ok()) << retry;
          EXPECT_TRUE(store->VerifyStore().empty());
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scrub detection power: the scrubs must actually catch corruption, not
// just pass on healthy stores.

TEST(VerifyStoreTest, DetectsOrphanedSubtrees) {
  workload::GeneratedDoc gen = MakeDoc();
  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kCascade;  // no cascade triggers
  auto store = RelationalStore::Create(gen.dtd, options);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store.value()->Load(*gen.doc).ok());
  ASSERT_TRUE(store.value()->VerifyStore().empty());
  // Deleting mid-level tuples directly (no strategy, no cascade) orphans
  // their children — exactly what the engine scrub exists to catch.
  ASSERT_TRUE(store.value()->db()->Execute("DELETE FROM n2").ok());
  std::vector<std::string> violations = store.value()->VerifyStore();
  ASSERT_FALSE(violations.empty());
  bool mentions_orphan = false;
  for (const std::string& v : violations) {
    if (v.find("orphan") != std::string::npos) mentions_orphan = true;
  }
  EXPECT_TRUE(mentions_orphan) << violations[0];
}

TEST(CheckIntegritySqlTest, ReportsOkThenFlagsOnDiskCorruption) {
  TempDir dir;
  rdb::Database db;
  ASSERT_TRUE(db.Open(dir.path()).ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  auto clean = db.ExecuteQuery("CHECK INTEGRITY");
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_EQ(clean->columns.size(), 1u);
  EXPECT_EQ(clean->columns[0], "violation");
  ASSERT_EQ(clean->rows.size(), 1u);
  EXPECT_EQ(clean->rows[0][0].AsString(), "ok");
  uint64_t scrubs = db.stats().integrity_checks;
  EXPECT_GE(scrubs, 1u);

  // Corrupt the snapshot under the running database: the online scrub
  // re-walks the file CRCs and must flag it without crashing anything.
  ASSERT_TRUE(db.Checkpoint().ok());
  std::string snap_path = dir.path() + "/snapshot.xupd";
  auto snap = rdb::ReadWholeFile(rdb::Vfs::Default(), snap_path);
  ASSERT_TRUE(snap.ok());
  std::string corrupt = *snap;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0xFF);
  WriteFile(snap_path, corrupt);
  auto flagged = db.ExecuteQuery("CHECK INTEGRITY");
  ASSERT_TRUE(flagged.ok()) << flagged.status();
  bool mentions_crc = false;
  for (const auto& row : flagged->rows) {
    if (row[0].AsString().find("CRC") != std::string::npos) {
      mentions_crc = true;
    }
  }
  EXPECT_TRUE(mentions_crc);
  // Restore and the scrub is clean again — it never mutates anything.
  WriteFile(snap_path, *snap);
  EXPECT_TRUE(db.VerifyIntegrity().empty());
  EXPECT_GT(db.stats().integrity_checks, scrubs);
}

TEST(CheckIntegritySqlTest, IsRejectedUnderExplainButRunsInReadOnlyMode) {
  TempDir dir;
  FaultVfs fault(rdb::Vfs::Default());
  rdb::Database db;
  ASSERT_TRUE(db.Open(dir.path(), FaultOptions(&fault)).ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
  EXPECT_FALSE(db.ExecuteQuery("EXPLAIN CHECK INTEGRITY").ok());
  fault.ArmFault(FaultKind::kEio, 1, "wal");
  ASSERT_FALSE(db.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(db.read_only());
  // The scrub stays available while degraded (and while the fault is still
  // armed — it is strictly read-only).
  auto scrub = db.ExecuteQuery("CHECK INTEGRITY");
  ASSERT_TRUE(scrub.ok()) << scrub.status();
  ASSERT_EQ(scrub->rows.size(), 1u);
  EXPECT_EQ(scrub->rows[0][0].AsString(), "ok");
}

// ---------------------------------------------------------------------------
// Satellites

TEST(StaleSnapshotTmpTest, LeftoverTmpFileIsRemovedOnOpen) {
  TempDir dir;
  {
    rdb::Database db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
  }
  // A crash between writing snapshot.tmp and renaming it leaves the tmp
  // file behind; Open must clean it up instead of letting it shadow a
  // later checkpoint.
  std::string tmp = dir.path() + "/snapshot.tmp";
  WriteFile(tmp, "half-written snapshot garbage");
  ASSERT_TRUE(rdb::Vfs::Default()->Exists(tmp));
  rdb::Database db;
  ASSERT_TRUE(db.Open(dir.path()).ok());
  EXPECT_FALSE(rdb::Vfs::Default()->Exists(tmp));
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_FALSE(rdb::Vfs::Default()->Exists(tmp));
}

TEST(ErrnoStatusTest, NamesTheErrnoSymbolically) {
  Status s = rdb::ErrnoStatus("cannot append to WAL", "/x/wal.xupd", ENOSPC);
  EXPECT_NE(s.message().find("ENOSPC"), std::string::npos) << s;
  EXPECT_NE(s.message().find("/x/wal.xupd"), std::string::npos) << s;
  EXPECT_STREQ(rdb::ErrnoName(EIO), "EIO");
  EXPECT_STREQ(rdb::ErrnoName(EINTR), "EINTR");
}

TEST(TryHealTest, WithoutDurabilityOrInsideTxnIsRejected) {
  rdb::Database db;  // durability never opened
  EXPECT_EQ(db.TryHeal().code(), StatusCode::kInvalidArgument);
  TempDir dir;
  FaultVfs fault(rdb::Vfs::Default());
  rdb::Database db2;
  ASSERT_TRUE(db2.Open(dir.path(), FaultOptions(&fault)).ok());
  ASSERT_TRUE(db2.Execute("CREATE TABLE t (id INTEGER)").ok());
  fault.ArmFault(FaultKind::kEio, 1, "wal");
  ASSERT_FALSE(db2.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(db2.read_only());
  fault.ClearFault();
  ASSERT_TRUE(db2.Begin().ok());
  EXPECT_EQ(db2.TryHeal().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(db2.Rollback().ok());
  EXPECT_TRUE(db2.TryHeal().ok());
}

}  // namespace
}  // namespace xupd
