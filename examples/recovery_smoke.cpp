// Recovery smoke tool for CI: run a deterministic mixed update workload
// against a durable store, get SIGKILLed mid-stream, reopen, and prove the
// recovered store equals the last committed state.
//
//   recovery_smoke write <dir> [max_ops]   run the workload (checkpointing
//                                          every 25 ops) until killed or
//                                          max_ops committed
//   recovery_smoke write-enospc <dir> [max_ops]
//                                          same workload, but a FaultVfs
//                                          injects ENOSPC into the second
//                                          checkpoint's snapshot write; the
//                                          checkpoint must fail cleanly
//                                          (retryable, no read-only
//                                          degradation), both scrub layers
//                                          must pass, and the run completes
//                                          after the fault clears
//   recovery_smoke verify <dir>            recover, read how many ops
//                                          committed, replay that many ops
//                                          on a fresh in-memory store, and
//                                          compare every durable table +
//                                          the next-id counter
//
// The trick that makes verification exact: each op commits in ONE
// transaction together with a bump of the ops counter row in the durable
// `smoke_meta` table. Recovery therefore lands on "exactly ops 1..n
// applied" for some n — never a torn op — and the verifier can rebuild the
// expected state by replaying the same deterministic op sequence.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "engine/store.h"
#include "rdb/vfs.h"
#include "workload/synthetic.h"
#include "xml/parser.h"

using namespace xupd;
using engine::DeleteStrategy;
using engine::InsertStrategy;
using engine::RelationalStore;

namespace {

constexpr uint64_t kSeed = 42;

workload::GeneratedDoc MakeDoc() {
  workload::SyntheticSpec spec;
  spec.scaling_factor = 10;
  spec.depth = 3;
  spec.fanout = 2;
  auto gen = workload::GenerateFixedSynthetic(spec, kSeed);
  if (!gen.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 gen.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(gen).value();
}

RelationalStore::Options StoreOptions(const std::string& dir) {
  RelationalStore::Options options;
  options.delete_strategy = DeleteStrategy::kPerTupleTrigger;
  options.insert_strategy = InsertStrategy::kTable;
  options.durability = !dir.empty();
  options.data_dir = dir;
  // Group commit: a SIGKILL survives (the OS keeps written pages); only
  // power loss would need kCommit.
  options.sync_mode = rdb::SyncMode::kBatched;
  return options;
}

/// Op #i, deterministic given the committed prefix 1..i-1: cycle through a
/// subtree copy, a predicate delete, and a constructed insert. Ids are
/// selected with ORDER BY, so writer and verifier pick identical sets.
Status DoOp(RelationalStore* store, int64_t i) {
  switch (i % 3) {
    case 0:
      // id < 500 restricts sources to originally-loaded tuples (fresh ids
      // start above that), so copies are never re-copied and the store
      // grows linearly instead of exponentially.
      return store->CopySubtreesWhere(
          "n2",
          "id < 500 AND v2 < " + std::to_string(100000 + (i % 7) * 100000),
          store->root_id());
    case 1:
      return store->DeleteWhere(
          "n3", "v3 < " + std::to_string(200000 + (i % 5) * 150000));
    default: {
      auto frag = xml::ParseFragment(
          "<n2><s2>op" + std::to_string(i) + "</s2><v2>" +
              std::to_string(i * 1000 % 999983) + "</v2></n2>",
          xml::ParseOptions());
      if (!frag.ok()) return frag.status();
      return store->InsertConstructed(**frag, store->root_id());
    }
  }
}

Status SetupMeta(rdb::Database* db) {
  XUPD_RETURN_IF_ERROR(
      db->Execute("CREATE TABLE smoke_meta (k VARCHAR, v INTEGER)"));
  return db->Execute("INSERT INTO smoke_meta VALUES ('ops', 0)");
}

int64_t ReadOps(rdb::Database* db) {
  auto r = db->ExecuteQuery("SELECT v FROM smoke_meta WHERE k = 'ops'");
  if (!r.ok() || r->rows.empty()) return -1;
  return r->rows[0][0].AsInt();
}

/// One committed unit: BEGIN; op #i (its entry-point txn nests as a
/// savepoint); ops counter := i; COMMIT.
Status CommitOp(RelationalStore* store, int64_t i) {
  rdb::Database* db = store->db();
  XUPD_RETURN_IF_ERROR(db->Begin());
  Status s = DoOp(store, i);
  if (s.ok()) {
    s = db->ExecuteBound("UPDATE smoke_meta SET v = ? WHERE k = 'ops'",
                         {rdb::Value::Int(i)});
  }
  if (!s.ok()) {
    (void)db->Rollback();
    return s;
  }
  return db->Commit();
}

std::string DumpDurableState(const rdb::Database& db) {
  std::string out = "next_id=" + std::to_string(db.next_id()) + "\n";
  for (const std::string& name : db.TableNames()) {
    const rdb::Table* t = db.FindTable(name);
    if (t == nullptr || !t->durable()) continue;
    out += "table " + t->schema().name() + "\n";
    for (size_t rowid = 0; rowid < t->capacity(); ++rowid) {
      out += t->is_live(rowid) ? "  live " : "  dead ";
      for (const rdb::Value& v : t->row_span(rowid)) out += v.ToString() + "|";
      out += "\n";
    }
  }
  return out;
}

int RunWriter(const std::string& dir, int64_t max_ops, bool enospc) {
  workload::GeneratedDoc gen = MakeDoc();
  rdb::FaultVfs fault(rdb::Vfs::Default());
  RelationalStore::Options options = StoreOptions(dir);
  if (enospc) options.vfs = &fault;
  auto store = RelationalStore::Create(gen.dtd, options);
  if (!store.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 store.status().ToString().c_str());
    return 2;
  }
  if (store.value()->recovered()) {
    std::fprintf(stderr, "writer requires an empty data dir\n");
    return 2;
  }
  Status s = store.value()->Load(*gen.doc);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 2;
  }
  s = SetupMeta(store.value()->db());
  if (!s.ok()) {
    std::fprintf(stderr, "meta setup failed: %s\n", s.ToString().c_str());
    return 2;
  }
  std::printf("writer: loaded, running ops...\n");
  std::fflush(stdout);
  bool fault_hit = false;
  for (int64_t i = 1; max_ops <= 0 || i <= max_ops; ++i) {
    s = CommitOp(store.value().get(), i);
    if (!s.ok()) {
      std::fprintf(stderr, "op %lld failed: %s\n",
                   static_cast<long long>(i), s.ToString().c_str());
      return 2;
    }
    if (i % 25 == 0) {
      s = store.value()->Checkpoint();
      if (!s.ok()) {
        // In enospc mode exactly one checkpoint is expected to fail: the
        // one whose snapshot tmp write hit the injected fault. The failure
        // must be retryable — the previous snapshot + WAL are intact, so
        // no read-only degradation and a clean scrub on both layers.
        if (!enospc || fault_hit) {
          std::fprintf(stderr, "checkpoint failed: %s\n",
                       s.ToString().c_str());
          return 2;
        }
        fault_hit = true;
        std::printf("writer: checkpoint hit injected fault: %s\n",
                    s.ToString().c_str());
        rdb::Database* db = store.value()->db();
        if (db->read_only()) {
          std::fprintf(stderr,
                       "tmp-write failure must not degrade to read-only\n");
          return 2;
        }
        auto iv = db->VerifyIntegrity();
        if (!iv.empty()) {
          std::fprintf(stderr, "CHECK INTEGRITY after fault: %s\n",
                       iv[0].c_str());
          return 2;
        }
        auto sv = store.value()->VerifyStore();
        if (!sv.empty()) {
          std::fprintf(stderr, "VerifyStore after fault: %s\n",
                       sv[0].c_str());
          return 2;
        }
        fault.ClearFault();
        s = store.value()->Checkpoint();
        if (!s.ok()) {
          std::fprintf(stderr, "checkpoint retry failed: %s\n",
                       s.ToString().c_str());
          return 2;
        }
        std::printf("writer: scrub clean, checkpoint retry succeeded\n");
      } else if (enospc && !fault_hit && !fault.fired()) {
        // First checkpoint done: arm ENOSPC for the next snapshot write —
        // the second checkpoint fails deterministically mid-tmp-write.
        fault.ArmFault(rdb::FaultVfs::FaultKind::kEnospc, 1, "snapshot");
      }
    }
  }
  if (enospc && !fault_hit) {
    std::fprintf(stderr, "injected fault never fired\n");
    return 2;
  }
  std::printf("writer: completed %lld ops\n",
              static_cast<long long>(max_ops));
  return 0;
}

int RunVerifier(const std::string& dir) {
  workload::GeneratedDoc gen = MakeDoc();
  auto recovered = RelationalStore::Create(gen.dtd, StoreOptions(dir));
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  if (!recovered.value()->recovered()) {
    std::fprintf(stderr, "nothing recovered from '%s'\n", dir.c_str());
    return 1;
  }
  int64_t ops = ReadOps(recovered.value()->db());
  if (ops < 0) {
    std::fprintf(stderr, "ops counter missing after recovery\n");
    return 1;
  }
  std::printf("verify: recovered %lld committed ops (replayed %llu WAL "
              "records)\n",
              static_cast<long long>(ops),
              static_cast<unsigned long long>(
                  recovered.value()->stats().recovery_replayed));

  // Rebuild the expected state in memory by replaying the same ops.
  auto expected = RelationalStore::Create(gen.dtd, StoreOptions(""));
  if (!expected.ok()) return 1;
  Status s = expected.value()->Load(*gen.doc);
  if (!s.ok()) return 1;
  s = SetupMeta(expected.value()->db());
  if (!s.ok()) return 1;
  for (int64_t i = 1; i <= ops; ++i) {
    s = CommitOp(expected.value().get(), i);
    if (!s.ok()) {
      std::fprintf(stderr, "replaying op %lld failed: %s\n",
                   static_cast<long long>(i), s.ToString().c_str());
      return 1;
    }
  }

  std::string got = DumpDurableState(*recovered.value()->db());
  std::string want = DumpDurableState(*expected.value()->db());
  if (got != want) {
    std::fprintf(stderr,
                 "MISMATCH: recovered state differs from the committed "
                 "prefix\n--- recovered (%zu bytes)\n--- expected (%zu "
                 "bytes)\n",
                 got.size(), want.size());
    return 1;
  }
  std::printf("verify: OK — recovered state equals the committed prefix\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s write|write-enospc <dir> [max_ops] | "
                 "%s verify <dir>\n",
                 argv[0], argv[0]);
    return 2;
  }
  std::string mode = argv[1];
  std::string dir = argv[2];
  if (mode == "write" || mode == "write-enospc") {
    int64_t max_ops = argc > 3 ? std::atoll(argv[3]) : 0;
    return RunWriter(dir, max_ops, mode == "write-enospc");
  }
  if (mode == "verify") return RunVerifier(dir);
  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 2;
}
