// Figure 11: insert performance, random workload (replicate 10 random
// subtrees), fixed sf=100 fanout=4, depth 1..6. Expected shape: the tuple
// method wins while copied subtrees are small, the table method overtakes as
// depth (hence copied data) grows.
#include <cstdio>
#include <cstdlib>

#include "harness.h"

using namespace xupd;
using bench::MeasureOnFreshStores;
using engine::DeleteStrategy;
using engine::InsertStrategy;

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  int max_depth = argc > 2 ? std::atoi(argv[2]) : 6;
  bench::PrintHeader(
      "Figure 11: insert (subtree copy), random workload (10 subtrees), "
      "sf=100 fanout=4",
      "depth");
  const InsertStrategy methods[] = {InsertStrategy::kTuple,
                                    InsertStrategy::kTable,
                                    InsertStrategy::kAsr};
  for (int depth = 1; depth <= max_depth; ++depth) {
    workload::SyntheticSpec spec;
    spec.scaling_factor = 100;
    spec.depth = depth;
    spec.fanout = 4;
    auto gen = workload::GenerateFixedSynthetic(spec, 42);
    if (!gen.ok()) return 1;
    std::vector<int64_t> picked;
    {
      auto scratch = bench::FreshStore(*gen, DeleteStrategy::kCascade,
                                       InsertStrategy::kTable);
      auto ids = scratch->SelectIds("n1", "");
      if (!ids.ok()) return 1;
      picked = bench::PickRandomIds(*ids, 10, 7);
    }
    for (InsertStrategy method : methods) {
      double t = MeasureOnFreshStores(
          *gen, DeleteStrategy::kCascade, method,
          [&picked](engine::RelationalStore* store) {
            for (int64_t id : picked) {
              Status s = store->CopySubtree("n1", id, store->root_id());
              if (!s.ok()) std::abort();
            }
          },
          {runs});
      bench::PrintPoint(ToString(method), depth, t);
    }
  }

  // insert_batch_size sweep (ROADMAP open item): random workload flavor —
  // 10 separate subtree copies per run, tuple strategy, one JSON row per
  // setting.
  {
    int depth = max_depth < 4 ? max_depth : 4;
    workload::SyntheticSpec spec;
    spec.scaling_factor = 100;
    spec.depth = depth;
    spec.fanout = 4;
    auto gen = workload::GenerateFixedSynthetic(spec, 42);
    if (!gen.ok()) return 1;
    std::vector<int64_t> picked;
    {
      auto scratch = bench::FreshStore(*gen, DeleteStrategy::kCascade,
                                       InsertStrategy::kTuple);
      auto ids = scratch->SelectIds("n1", "");
      if (!ids.ok()) return 1;
      picked = bench::PickRandomIds(*ids, 10, 7);
    }
    for (int batch : {1, 16, 64, 256}) {
      engine::RelationalStore::Options options;
      options.delete_strategy = DeleteStrategy::kCascade;
      options.insert_strategy = InsertStrategy::kTuple;
      options.insert_batch_size = batch;
      bench::MeasuredRuns t = bench::MeasureOnFreshStores(
          *gen, options,
          [&picked](engine::RelationalStore* store) {
            for (int64_t id : picked) {
              Status s = store->CopySubtree("n1", id, store->root_id());
              if (!s.ok()) std::abort();
            }
          },
          {runs});
      std::printf(
          "{\"bench\":\"fig11_insert_random_depth\",\"sweep\":"
          "\"insert_batch_size\",\"batch\":%d,\"depth\":%d,\"sf\":100,"
          "\"seconds\":%.6f,\"run_p50_us\":%.1f,\"run_p99_us\":%.1f,%s\n",
          batch, depth, t.avg_seconds, t.run_ns.Percentile(50) / 1e3,
          t.run_ns.Percentile(99) / 1e3, bench::JsonTail().c_str());
    }
  }
  return 0;
}
