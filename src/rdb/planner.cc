#include "rdb/planner.h"

#include <algorithm>
#include <cstdio>

#include "common/str_util.h"
#include "rdb/database.h"

namespace xupd::rdb {

using sql::Expr;

namespace {

void FlattenConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == Expr::Kind::kBinary && e.op == Expr::Op::kAnd) {
    FlattenConjuncts(e.children[0], out);
    FlattenConjuncts(e.children[1], out);
    return;
  }
  out->push_back(&e);
}

/// The one-relation FROM list a DELETE/UPDATE binds its expressions against
/// (aliased by the table's own name, like the seed interpreter).
std::vector<PlannedRelation> SingleTableRelations(const Table* table) {
  std::vector<PlannedRelation> rels(1);
  rels[0].alias = table->schema().name();
  rels[0].name = table->schema().name();
  rels[0].table = table;
  rels[0].columns.reserve(table->schema().column_count());
  for (const ColumnDef& c : table->schema().columns()) {
    rels[0].columns.push_back(c.name);
  }
  return rels;
}

}  // namespace

// ---------------------------------------------------------------------------
// Name resolution and expression binding

void Planner::NoteTable(const std::string& name) {
  std::shared_ptr<const uint64_t> version = db_->table_version(name);
  for (const PlanTableDep& dep : table_deps_) {
    if (dep.version == version) return;
  }
  table_deps_.push_back({version, *version});
}

Result<std::pair<size_t, size_t>> Planner::ResolveColumn(
    const std::vector<PlannedRelation>& rels, const std::string& table,
    const std::string& column) const {
  if (!table.empty()) {
    for (size_t i = 0; i < rels.size(); ++i) {
      if (EqualsIgnoreCase(rels[i].alias, table)) {
        for (size_t c = 0; c < rels[i].columns.size(); ++c) {
          if (EqualsIgnoreCase(rels[i].columns[c], column)) {
            return std::make_pair(i, c);
          }
        }
        return Status::NotFound("column '" + table + "." + column +
                                "' not found");
      }
    }
    return Status::NotFound("unknown table alias '" + table + "'");
  }
  int found_rel = -1;
  int found_col = -1;
  for (size_t i = 0; i < rels.size(); ++i) {
    for (size_t c = 0; c < rels[i].columns.size(); ++c) {
      if (EqualsIgnoreCase(rels[i].columns[c], column)) {
        if (found_rel >= 0) {
          return Status::InvalidArgument("ambiguous column '" + column + "'");
        }
        found_rel = static_cast<int>(i);
        found_col = static_cast<int>(c);
        break;
      }
    }
  }
  if (found_rel < 0) {
    return Status::NotFound("column '" + column + "' not found");
  }
  return std::make_pair(static_cast<size_t>(found_rel),
                        static_cast<size_t>(found_col));
}

Result<BoundExpr> Planner::Bind(const Expr& e,
                                const std::vector<PlannedRelation>& rels,
                                bool values_context) {
  BoundExpr b;
  b.kind = e.kind;
  b.op = e.op;
  b.negated = e.negated;
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      b.literal = e.literal;
      return b;
    case Expr::Kind::kParam:
      b.param_index = e.param_index;
      return b;
    case Expr::Kind::kColumn: {
      if (values_context) {
        return Status::InvalidArgument("column reference outside a query");
      }
      XUPD_ASSIGN_OR_RETURN(auto rc, ResolveColumn(rels, e.table, e.column));
      b.rel = rc.first;
      b.col = rc.second;
      b.name = e.table.empty() ? e.column : e.table + "." + e.column;
      b.max_rel = static_cast<int>(rc.first);
      return b;
    }
    case Expr::Kind::kOldColumn: {
      if (old_schema_ == nullptr) {
        return Status::InvalidArgument("OLD.* outside a row trigger");
      }
      int col = old_schema_->ColumnIndex(e.column);
      if (col < 0) {
        return Status::NotFound("OLD." + e.column + " not found");
      }
      b.col = static_cast<size_t>(col);
      b.name = e.column;
      return b;
    }
    case Expr::Kind::kUnary:
    case Expr::Kind::kBinary:
    case Expr::Kind::kIsNull: {
      for (const Expr& c : e.children) {
        XUPD_ASSIGN_OR_RETURN(BoundExpr bc, Bind(c, rels, values_context));
        b.max_rel = std::max(b.max_rel, bc.max_rel);
        b.children.push_back(std::move(bc));
      }
      return b;
    }
    case Expr::Kind::kInList: {
      XUPD_ASSIGN_OR_RETURN(BoundExpr operand,
                            Bind(e.children[0], rels, values_context));
      b.max_rel = operand.max_rel;
      b.children.push_back(std::move(operand));
      for (const Expr& item : e.in_list) {
        XUPD_ASSIGN_OR_RETURN(BoundExpr bi, Bind(item, rels, values_context));
        b.max_rel = std::max(b.max_rel, bi.max_rel);
        b.in_list.push_back(std::move(bi));
      }
      return b;
    }
    case Expr::Kind::kInSubquery: {
      XUPD_ASSIGN_OR_RETURN(BoundExpr operand,
                            Bind(e.children[0], rels, values_context));
      b.max_rel = operand.max_rel;
      b.children.push_back(std::move(operand));
      XUPD_ASSIGN_OR_RETURN(b.subquery, PlanSelect(*e.subquery));
      return b;
    }
    case Expr::Kind::kAggregate:
      return Status::InvalidArgument("aggregate outside select list");
  }
  return Status::Internal("unknown expression kind");
}

// ---------------------------------------------------------------------------
// Access-path selection

int Planner::ChooseAccessPath(const std::vector<PlannedRelation>& rels,
                              size_t k,
                              const std::vector<BoundExpr*>& conjuncts,
                              AccessPath* path) const {
  path->kind = AccessPath::Kind::kScan;
  const Table* table = rels[k].table;
  if (table == nullptr) return -1;  // CTEs have no indexes
  if (!db_->planner_index_probes_enabled() || !allow_index_probes_) return -1;
  for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
    const BoundExpr& c = *conjuncts[ci];
    if (c.kind == Expr::Kind::kBinary && c.op == Expr::Op::kEq) {
      for (int side = 0; side < 2; ++side) {
        const BoundExpr& lhs = c.children[static_cast<size_t>(side)];
        const BoundExpr& rhs = c.children[static_cast<size_t>(1 - side)];
        if (lhs.kind != Expr::Kind::kColumn || lhs.rel != k) continue;
        // The probe value may only see strictly-earlier relations.
        if (rhs.max_rel >= static_cast<int>(k)) continue;
        const HashIndex* idx =
            table->FindIndexOnColumn(static_cast<int>(lhs.col));
        if (idx == nullptr) continue;
        path->kind = AccessPath::Kind::kIndexEq;
        path->index = idx;
        path->index_name = idx->name();
        path->column_name = lhs.name;
        path->probe = rhs;
        return static_cast<int>(ci);
      }
    } else if (c.kind == Expr::Kind::kInList && !c.negated &&
               c.children[0].kind == Expr::Kind::kColumn &&
               c.children[0].rel == k) {
      bool all_row_free = true;
      for (const BoundExpr& item : c.in_list) {
        if (item.max_rel >= 0) {
          all_row_free = false;
          break;
        }
      }
      if (!all_row_free) continue;
      const HashIndex* idx =
          table->FindIndexOnColumn(static_cast<int>(c.children[0].col));
      if (idx == nullptr) continue;
      path->kind = AccessPath::Kind::kIndexIn;
      path->index = idx;
      path->index_name = idx->name();
      path->column_name = c.children[0].name;
      path->probe_list = c.in_list;
      return static_cast<int>(ci);
    } else if (c.kind == Expr::Kind::kInSubquery && !c.negated &&
               c.children[0].kind == Expr::Kind::kColumn &&
               c.children[0].rel == k) {
      const HashIndex* idx =
          table->FindIndexOnColumn(static_cast<int>(c.children[0].col));
      if (idx == nullptr) continue;
      path->kind = AccessPath::Kind::kIndexInSubquery;
      path->index = idx;
      path->index_name = idx->name();
      path->column_name = c.children[0].name;
      path->probe_subquery = c.subquery;
      return static_cast<int>(ci);
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// SELECT planning

Result<PlannedCore> Planner::PlanCore(const sql::SelectCore& core) {
  PlannedCore out;
  for (const sql::TableRef& ref : core.from) {
    PlannedRelation rel;
    rel.alias = ref.alias;
    rel.name = ref.table;
    bool is_cte = false;
    for (auto it = cte_stack_.rbegin(); it != cte_stack_.rend(); ++it) {
      if (EqualsIgnoreCase(it->name, ref.table)) {
        rel.cte_slot = it->slot;
        rel.columns = it->columns;
        is_cte = true;
        break;
      }
    }
    if (!is_cte) {
      const Table* table = db_->FindTable(ref.table);
      if (table == nullptr) {
        return Status::NotFound("table '" + ref.table + "' not found");
      }
      NoteTable(table->schema().name());
      rel.table = table;
      rel.columns.reserve(table->schema().column_count());
      for (const ColumnDef& c : table->schema().columns()) {
        rel.columns.push_back(c.name);
      }
    }
    out.relations.push_back(std::move(rel));
  }

  for (const sql::SelectItem& item : core.items) {
    if (!item.star && item.expr.kind == Expr::Kind::kAggregate) {
      out.has_aggregate = true;
    }
  }

  // Output schema + bound output expressions ('*' expanded here, once).
  size_t anon = 0;
  for (const sql::SelectItem& item : core.items) {
    if (item.star) {
      if (out.has_aggregate) {
        return Status::InvalidArgument("'*' mixed with aggregates");
      }
      for (size_t r = 0; r < out.relations.size(); ++r) {
        for (size_t c = 0; c < out.relations[r].columns.size(); ++c) {
          BoundExpr e;
          e.kind = Expr::Kind::kColumn;
          e.rel = r;
          e.col = c;
          e.name = out.relations[r].columns[c];
          e.max_rel = static_cast<int>(r);
          out.outputs.push_back(std::move(e));
          out.out_columns.push_back(out.relations[r].columns[c]);
        }
      }
      continue;
    }
    if (item.expr.kind == Expr::Kind::kAggregate) {
      const Expr& e = item.expr;
      BoundExpr agg;
      agg.kind = Expr::Kind::kAggregate;
      agg.agg = e.agg;
      agg.count_star = e.count_star;
      if (!e.count_star) {
        XUPD_ASSIGN_OR_RETURN(
            auto rc, ResolveColumn(out.relations, e.table, e.column));
        agg.rel = rc.first;
        agg.col = rc.second;
        agg.name = e.table.empty() ? e.column : e.table + "." + e.column;
        agg.max_rel = static_cast<int>(rc.first);
      }
      out.outputs.push_back(std::move(agg));
    } else {
      if (out.has_aggregate) {
        return Status::InvalidArgument(
            "non-aggregate select item without GROUP BY");
      }
      XUPD_ASSIGN_OR_RETURN(BoundExpr bound, Bind(item.expr, out.relations));
      out.outputs.push_back(std::move(bound));
    }
    if (!item.alias.empty()) {
      out.out_columns.push_back(item.alias);
    } else if (item.expr.kind == Expr::Kind::kColumn) {
      out.out_columns.push_back(item.expr.column);
    } else {
      out.out_columns.push_back("expr" + std::to_string(++anon));
    }
  }

  // WHERE conjuncts, pushed down to the earliest step that binds them.
  out.filters.resize(out.relations.size());
  std::vector<const Expr*> conjuncts;
  if (core.where.has_value()) FlattenConjuncts(*core.where, &conjuncts);
  for (const Expr* c : conjuncts) {
    XUPD_ASSIGN_OR_RETURN(BoundExpr bound, Bind(*c, out.relations));
    if (out.relations.empty()) {
      out.const_filters.push_back(std::move(bound));
    } else {
      size_t at = bound.max_rel < 0 ? 0 : static_cast<size_t>(bound.max_rel);
      out.filters[at].push_back(std::move(bound));
    }
  }

  // Access paths. The consumed conjunct stays in the filter list: the hash
  // index matches by value identity while SQL comparison coerces across
  // types, so the residual check keeps scan/probe results identical.
  out.paths.resize(out.relations.size());
  for (size_t k = 0; k < out.relations.size(); ++k) {
    std::vector<BoundExpr*> step;
    step.reserve(out.filters[k].size());
    for (BoundExpr& f : out.filters[k]) step.push_back(&f);
    ChooseAccessPath(out.relations, k, step, &out.paths[k]);
  }
  return out;
}

Result<std::shared_ptr<const PlannedSelect>> Planner::PlanSelect(
    const sql::SelectStmt& stmt) {
  auto out = std::make_shared<PlannedSelect>();
  size_t scope_base = cte_stack_.size();
  auto restore_scope = [&] { cte_stack_.resize(scope_base); };

  for (const auto& cte : stmt.ctes) {
    auto inner = PlanSelect(*cte.query);
    if (!inner.ok()) {
      restore_scope();
      return inner.status();
    }
    PlannedSelect::Cte planned;
    planned.name = cte.name;
    planned.slot = next_cte_slot_++;
    planned.query = std::move(inner).value();
    if (!cte.columns.empty()) {
      if (cte.columns.size() != planned.query->out_columns.size()) {
        restore_scope();
        return Status::InvalidArgument("CTE '" + cte.name +
                                       "' column count mismatch");
      }
      planned.columns = cte.columns;
    } else {
      planned.columns = planned.query->out_columns;
    }
    cte_stack_.push_back({planned.name, planned.slot, planned.columns});
    out->ctes.push_back(std::move(planned));
  }

  for (const sql::SelectCore& core : stmt.cores) {
    auto planned = PlanCore(core);
    if (!planned.ok()) {
      restore_scope();
      return planned.status();
    }
    if (!out->cores.empty() &&
        planned->out_columns.size() != out->cores[0].out_columns.size()) {
      restore_scope();
      return Status::InvalidArgument("UNION ALL arity mismatch");
    }
    out->cores.push_back(std::move(planned).value());
  }
  out->out_columns = out->cores[0].out_columns;

  for (const sql::OrderItem& item : stmt.order_by) {
    int col = -1;
    for (size_t i = 0; i < out->out_columns.size(); ++i) {
      if (EqualsIgnoreCase(out->out_columns[i], item.column)) {
        col = static_cast<int>(i);
        break;
      }
    }
    if (col < 0) {
      restore_scope();
      return Status::NotFound("ORDER BY column '" + item.column +
                              "' not in result");
    }
    out->order_by.emplace_back(col, item.desc);
  }

  restore_scope();
  return std::shared_ptr<const PlannedSelect>(std::move(out));
}

// ---------------------------------------------------------------------------
// DML planning

Result<PlannedMutation> Planner::PlanDelete(const sql::DeleteStmt& stmt) {
  PlannedMutation m;
  m.table = db_->FindTable(stmt.table);
  if (m.table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  m.table_name = m.table->schema().name();
  NoteTable(m.table_name);
  std::vector<PlannedRelation> rels = SingleTableRelations(m.table);

  std::vector<const Expr*> conjuncts;
  if (stmt.where.has_value()) FlattenConjuncts(*stmt.where, &conjuncts);
  std::vector<BoundExpr> bound;
  bound.reserve(conjuncts.size());
  for (const Expr* c : conjuncts) {
    XUPD_ASSIGN_OR_RETURN(BoundExpr b, Bind(*c, rels));
    bound.push_back(std::move(b));
  }
  std::vector<BoundExpr*> ptrs;
  ptrs.reserve(bound.size());
  for (BoundExpr& b : bound) ptrs.push_back(&b);
  int consumed = ChooseAccessPath(rels, 0, ptrs, &m.path);
  for (size_t i = 0; i < bound.size(); ++i) {
    if (static_cast<int>(i) == consumed) continue;
    m.filters.push_back(std::move(bound[i]));
  }
  return m;
}

Result<PlannedMutation> Planner::PlanUpdate(const sql::UpdateStmt& stmt) {
  sql::DeleteStmt shape;
  shape.table = stmt.table;
  shape.where = stmt.where;
  XUPD_ASSIGN_OR_RETURN(PlannedMutation m, PlanDelete(shape));

  std::vector<PlannedRelation> rels = SingleTableRelations(m.table);
  for (const auto& [name, expr] : stmt.sets) {
    int col = m.table->schema().ColumnIndex(name);
    if (col < 0) {
      return Status::NotFound("column '" + name + "' not found");
    }
    PlannedMutation::Set set;
    set.col = col;
    set.type = m.table->schema().columns()[static_cast<size_t>(col)].type;
    XUPD_ASSIGN_OR_RETURN(set.expr, Bind(expr, rels));
    m.sets.push_back(std::move(set));
  }
  return m;
}

Result<PlannedInsert> Planner::PlanInsert(const sql::InsertStmt& stmt) {
  PlannedInsert ins;
  ins.table = db_->FindTable(stmt.table);
  if (ins.table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  ins.table_name = ins.table->schema().name();
  NoteTable(ins.table_name);
  const TableSchema& schema = ins.table->schema();
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.column_count(); ++i) {
      ins.column_map.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : stmt.columns) {
      int col = schema.ColumnIndex(name);
      if (col < 0) {
        return Status::NotFound("column '" + name + "' not found in '" +
                                stmt.table + "'");
      }
      ins.column_map.push_back(col);
    }
  }
  ins.column_types.reserve(ins.column_map.size());
  for (int col : ins.column_map) {
    ins.column_types.push_back(schema.columns()[static_cast<size_t>(col)].type);
  }

  if (stmt.select != nullptr) {
    XUPD_ASSIGN_OR_RETURN(ins.select, PlanSelect(*stmt.select));
    return ins;
  }
  std::vector<PlannedRelation> no_rels;
  for (const auto& exprs : stmt.rows) {
    if (exprs.size() != ins.column_map.size()) {
      return Status::InvalidArgument("INSERT arity mismatch");
    }
    std::vector<BoundExpr> row;
    row.reserve(exprs.size());
    for (const Expr& e : exprs) {
      XUPD_ASSIGN_OR_RETURN(BoundExpr b,
                            Bind(e, no_rels, /*values_context=*/true));
      row.push_back(std::move(b));
    }
    ins.rows.push_back(std::move(row));
  }
  return ins;
}

Result<std::shared_ptr<const PlannedStatement>> Planner::Plan(
    const sql::Statement& stmt) {
  auto plan = std::make_shared<PlannedStatement>();
  plan->kind = stmt.kind;
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect: {
      XUPD_ASSIGN_OR_RETURN(plan->select, PlanSelect(stmt.select));
      break;
    }
    case sql::Statement::Kind::kDelete: {
      XUPD_ASSIGN_OR_RETURN(plan->mutation, PlanDelete(stmt.del));
      break;
    }
    case sql::Statement::Kind::kUpdate: {
      XUPD_ASSIGN_OR_RETURN(plan->mutation, PlanUpdate(stmt.update));
      break;
    }
    case sql::Statement::Kind::kInsert: {
      XUPD_ASSIGN_OR_RETURN(plan->insert, PlanInsert(stmt.insert));
      break;
    }
    default:
      return Status::InvalidArgument("statement kind is not plannable");
  }
  plan->cte_slot_count = next_cte_slot_;
  plan->table_deps = std::move(table_deps_);
  return std::shared_ptr<const PlannedStatement>(std::move(plan));
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering

namespace {

std::string AggName(Expr::Agg agg) {
  switch (agg) {
    case Expr::Agg::kMin:
      return "MIN";
    case Expr::Agg::kMax:
      return "MAX";
    case Expr::Agg::kCount:
      return "COUNT";
    case Expr::Agg::kSum:
      return "SUM";
  }
  return "?";
}

std::string OpName(Expr::Op op) {
  switch (op) {
    case Expr::Op::kEq:
      return "=";
    case Expr::Op::kNe:
      return "<>";
    case Expr::Op::kLt:
      return "<";
    case Expr::Op::kLe:
      return "<=";
    case Expr::Op::kGt:
      return ">";
    case Expr::Op::kGe:
      return ">=";
    case Expr::Op::kAnd:
      return "AND";
    case Expr::Op::kOr:
      return "OR";
    case Expr::Op::kAdd:
      return "+";
    case Expr::Op::kSub:
      return "-";
    case Expr::Op::kMul:
      return "*";
    case Expr::Op::kDiv:
      return "/";
    default:
      return "?";
  }
}

std::string ExprStr(const BoundExpr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal.ToSqlLiteral();
    case Expr::Kind::kParam:
      return "?" + std::to_string(e.param_index + 1);
    case Expr::Kind::kColumn:
      return e.name;
    case Expr::Kind::kOldColumn:
      return "OLD." + e.name;
    case Expr::Kind::kUnary:
      return (e.op == Expr::Op::kNot ? "NOT " : "-") + ExprStr(e.children[0]);
    case Expr::Kind::kBinary:
      return "(" + ExprStr(e.children[0]) + " " + OpName(e.op) + " " +
             ExprStr(e.children[1]) + ")";
    case Expr::Kind::kIsNull:
      return "(" + ExprStr(e.children[0]) +
             (e.negated ? " IS NOT NULL)" : " IS NULL)");
    case Expr::Kind::kInList: {
      std::string out = "(" + ExprStr(e.children[0]) +
                        (e.negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < e.in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprStr(e.in_list[i]);
      }
      return out + "))";
    }
    case Expr::Kind::kInSubquery:
      return "(" + ExprStr(e.children[0]) +
             (e.negated ? " NOT IN (subquery))" : " IN (subquery))");
    case Expr::Kind::kAggregate:
      return AggName(e.agg) + "(" + (e.count_star ? "*" : e.name) + ")";
  }
  return "?";
}

std::string FilterSuffix(const std::vector<BoundExpr>& filters) {
  if (filters.empty()) return "";
  std::string out = " (filter: ";
  for (size_t i = 0; i < filters.size(); ++i) {
    if (i > 0) out += " AND ";
    out += ExprStr(filters[i]);
  }
  return out + ")";
}

void Line(std::string* out, int depth, const std::string& text) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(text);
  out->push_back('\n');
}

std::string RelationLabel(const PlannedRelation& rel) {
  std::string label = rel.name;
  if (!EqualsIgnoreCase(rel.alias, rel.name)) label += " " + rel.alias;
  if (rel.cte_slot >= 0) label += " (cte)";
  return label;
}

/// EXPLAIN ANALYZE annotation for one operator line; empty when `os` is
/// null (plain EXPLAIN). `loops` adds the Open() count — meaningful on a
/// join inner side, noise on a statement head.
std::string ActualSuffix(const OpStats* os, bool loops) {
  if (os == nullptr) return "";
  char buf[96];
  if (loops) {
    std::snprintf(buf, sizeof buf,
                  " (actual rows=%llu loops=%llu time_us=%.3f)",
                  static_cast<unsigned long long>(os->rows),
                  static_cast<unsigned long long>(os->opens),
                  static_cast<double>(os->time_ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, " (actual rows=%llu time_us=%.3f)",
                  static_cast<unsigned long long>(os->rows),
                  static_cast<double>(os->time_ns) / 1e3);
  }
  return buf;
}

void AccessNode(std::string* out, int depth, const PlannedRelation& rel,
                const AccessPath& path, const std::vector<BoundExpr>& filters,
                const OpStats* os = nullptr) {
  std::string text;
  switch (path.kind) {
    case AccessPath::Kind::kScan:
      text = "Scan " + RelationLabel(rel);
      break;
    case AccessPath::Kind::kIndexEq:
      text = "IndexProbe " + RelationLabel(rel) + " via " + path.index_name +
             " (" + path.column_name + " = " + ExprStr(path.probe) + ")";
      break;
    case AccessPath::Kind::kIndexIn:
      text = "IndexProbe " + RelationLabel(rel) + " via " + path.index_name +
             " (" + path.column_name + " IN [" +
             std::to_string(path.probe_list.size()) + " values])";
      break;
    case AccessPath::Kind::kIndexInSubquery:
      text = "IndexProbe " + RelationLabel(rel) + " via " + path.index_name +
             " (" + path.column_name + " IN (subquery))";
      break;
  }
  Line(out, depth, text + FilterSuffix(filters) +
                       ActualSuffix(os, /*loops=*/true));
}

void JoinTree(std::string* out, int depth, const PlannedCore& core, size_t k,
              const AnalyzeStats::Core* cs) {
  const OpStats* rel_stats = [&](size_t i) -> const OpStats* {
    return cs != nullptr && i < cs->rels.size() ? &cs->rels[i] : nullptr;
  }(k);
  if (k == 0) {
    AccessNode(out, depth, core.relations[0], core.paths[0], core.filters[0],
               rel_stats);
    return;
  }
  Line(out, depth, "NestedLoopJoin");
  JoinTree(out, depth + 1, core, k - 1, cs);
  AccessNode(out, depth + 1, core.relations[k], core.paths[k],
             core.filters[k], rel_stats);
}

void CoreToString(std::string* out, int depth, const PlannedCore& core,
                  const AnalyzeStats::Core* cs) {
  std::string head = core.has_aggregate ? "Aggregate [" : "Project [";
  for (size_t i = 0; i < core.outputs.size(); ++i) {
    if (i > 0) head += ", ";
    head += core.has_aggregate ? ExprStr(core.outputs[i])
                               : core.out_columns[i];
  }
  Line(out, depth,
       head + "]" + ActualSuffix(cs != nullptr ? &cs->total : nullptr,
                                 /*loops=*/false));
  if (core.relations.empty()) {
    Line(out, depth + 1, "OneRow" + FilterSuffix(core.const_filters));
    return;
  }
  JoinTree(out, depth + 1, core, core.relations.size() - 1, cs);
}

void SelectToString(std::string* out, int depth, const PlannedSelect& sel,
                    const AnalyzeStats* an = nullptr) {
  for (const auto& cte : sel.ctes) {
    Line(out, depth, "Cte " + cte.name);
    // CTE bodies (like subqueries) are not instrumented; their cost lands in
    // the consuming core's access steps.
    SelectToString(out, depth + 1, *cte.query);
  }
  if (!sel.order_by.empty()) {
    std::string keys;
    for (const auto& [col, desc] : sel.order_by) {
      if (!keys.empty()) keys += ", ";
      keys += sel.out_columns[static_cast<size_t>(col)];
      if (desc) keys += " DESC";
    }
    Line(out, depth, "Sort [" + keys + "]");
    ++depth;
  }
  if (sel.cores.size() > 1) {
    Line(out, depth, "UnionAll");
    ++depth;
  }
  for (size_t i = 0; i < sel.cores.size(); ++i) {
    CoreToString(out, depth, sel.cores[i],
                 an != nullptr && i < an->cores.size() ? &an->cores[i]
                                                       : nullptr);
  }
}

void MutationAccess(std::string* out, int depth, const PlannedMutation& m,
                    const OpStats* os = nullptr) {
  PlannedRelation rel;
  rel.alias = m.table_name;
  rel.name = m.table_name;
  AccessNode(out, depth, rel, m.path, m.filters, os);
}

std::string PlanToStringImpl(const PlannedStatement& plan,
                             const AnalyzeStats* an) {
  std::string out;
  const OpStats* root = an != nullptr ? &an->root : nullptr;
  const OpStats* mut = an != nullptr ? &an->mutation : nullptr;
  switch (plan.kind) {
    case sql::Statement::Kind::kSelect:
      SelectToString(&out, 0, *plan.select, an);
      break;
    case sql::Statement::Kind::kDelete:
      Line(&out, 0, "Delete " + plan.mutation.table_name +
                        ActualSuffix(root, /*loops=*/false));
      MutationAccess(&out, 1, plan.mutation, mut);
      break;
    case sql::Statement::Kind::kUpdate: {
      std::string sets;
      for (const auto& set : plan.mutation.sets) {
        if (!sets.empty()) sets += ", ";
        sets += plan.mutation.table->schema()
                    .columns()[static_cast<size_t>(set.col)]
                    .name;
      }
      Line(&out, 0, "Update " + plan.mutation.table_name + " [set " + sets +
                        "]" + ActualSuffix(root, /*loops=*/false));
      MutationAccess(&out, 1, plan.mutation, mut);
      break;
    }
    case sql::Statement::Kind::kInsert: {
      Line(&out, 0, "Insert " + plan.insert.table_name + " [" +
                        std::to_string(plan.insert.column_map.size()) +
                        " columns]" + ActualSuffix(root, /*loops=*/false));
      if (plan.insert.select != nullptr) {
        SelectToString(&out, 1, *plan.insert.select, an);
      } else {
        Line(&out, 1,
             "Values [" + std::to_string(plan.insert.rows.size()) + " rows]");
      }
      break;
    }
    default:
      Line(&out, 0, "(not plannable)");
      break;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

}  // namespace

std::string PlanToString(const PlannedStatement& plan) {
  return PlanToStringImpl(plan, nullptr);
}

std::string PlanToStringAnalyzed(const PlannedStatement& plan,
                                 const AnalyzeStats& stats) {
  std::string out = PlanToStringImpl(plan, &stats);
  char buf[96];
  std::snprintf(buf, sizeof buf, "\nExecution: rows=%llu time_us=%.3f",
                static_cast<unsigned long long>(stats.root.rows),
                static_cast<double>(stats.root.time_ns) / 1e3);
  out += buf;
  return out;
}

}  // namespace xupd::rdb
