// Small string helpers shared across parsers and formatters.
#ifndef XUPD_COMMON_STR_UTIL_H_
#define XUPD_COMMON_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xupd {

/// Splits `s` on any run of ASCII whitespace; no empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Splits `s` on the single character `sep`; keeps empty tokens.
std::vector<std::string> SplitChar(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string AsciiToLower(std::string_view s);
std::string AsciiToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Case-insensitive ASCII three-way comparison (strcasecmp semantics).
int CompareIgnoreCase(std::string_view a, std::string_view b);

/// Transparent case-insensitive ordering for ordered containers: lets a
/// std::map keyed by std::string be probed with a string_view without
/// allocating a lowered copy on every lookup.
struct AsciiCaseInsensitiveLess {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return CompareIgnoreCase(a, b) < 0;
  }
};

/// Escapes &, <, >, " and ' for XML text/attribute output.
std::string XmlEscape(std::string_view s);

/// Quotes a string as a SQL literal: doubles embedded single quotes and wraps
/// in single quotes.
std::string SqlQuote(std::string_view s);

/// True if `s` parses entirely as a signed 64-bit integer; stores into *out.
bool ParseInt64(std::string_view s, int64_t* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace xupd

#endif  // XUPD_COMMON_STR_UTIL_H_
