// Table 1: the synthetic-document parameter grid and the resulting data
// sizes. Prints tuple counts (closed form + measured after shredding) and
// approximate stored bytes for each experiment family.
#include <cstdio>

#include "harness.h"

using namespace xupd;

namespace {

size_t ApproxBytes(engine::RelationalStore* store) {
  size_t bytes = 0;
  for (const auto& name : store->db()->TableNames()) {
    const rdb::Table* t = store->db()->FindTable(name);
    for (size_t r = 0; r < t->capacity(); ++r) {
      if (!t->is_live(r)) continue;
      for (const rdb::Value& v : t->row_span(r)) {
        bytes += v.type() == rdb::ValueType::kString ? v.AsString().size() + 8
                                                     : 8;
      }
    }
  }
  return bytes;
}

void Report(const char* family, const workload::SyntheticSpec& spec) {
  auto gen = workload::GenerateFixedSynthetic(spec, 42);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
    std::abort();
  }
  auto store = bench::FreshStore(*gen, engine::DeleteStrategy::kCascade,
                                 engine::InsertStrategy::kTable);
  size_t expected = workload::FixedSyntheticTupleCount(spec);
  std::printf("%-18s sf=%-4d d=%d f=%d  tuples=%-8zu (closed form %-8zu)  "
              "~%.2f MB\n",
              family, spec.scaling_factor, spec.depth, spec.fanout,
              gen->tuple_count, expected,
              static_cast<double>(ApproxBytes(store.get())) / (1024.0 * 1024.0));
}

}  // namespace

int main() {
  std::printf("# Table 1: synthetic data configurations and data sizes\n");
  // fixed fanout (f=1): depth 2,4,8 x sf 100..800; max 6400 tuples (0.8MB).
  for (int d : {2, 4, 8}) {
    for (int sf : {100, 200, 400, 800}) {
      Report("fixed-fanout", {sf, d, 1});
    }
  }
  // fixed depth (d=2): fanout 1,2,4,8 x sf 100..800; max 7200 tuples.
  for (int f : {1, 2, 4, 8}) {
    for (int sf : {100, 200, 400, 800}) {
      Report("fixed-depth", {sf, 2, f});
    }
  }
  // fixed sf (=100): depth 2..5 x fanout 2,4,8 — capped as in the paper
  // (58500 tuples / 7MB max, i.e. excluding blow-up combos).
  for (int d : {2, 3, 4, 5}) {
    for (int f : {2, 4, 8}) {
      if (workload::FixedSyntheticTupleCount({100, d, f}) > 60000) continue;
      Report("fixed-sf", {100, d, f});
    }
  }
  return 0;
}
