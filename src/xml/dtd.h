// DTD model + parser. The DTD drives (a) IDREF/IDREFS attribute
// classification when parsing documents, (b) the Shared Inlining relational
// mapping of §5.1, and (c) the validator (an implementation of the paper's §8
// "typechecking updates" future-work item).
#ifndef XUPD_XML_DTD_H_
#define XUPD_XML_DTD_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace xupd::xml {

/// Occurrence qualifier on a content particle: one, `?`, `*`, `+`.
enum class Quant { kOne, kOptional, kStar, kPlus };

/// A node in an <!ELEMENT> content model.
struct ContentParticle {
  enum class Kind { kName, kSeq, kChoice };
  Kind kind = Kind::kName;
  Quant quant = Quant::kOne;
  std::string name;                       ///< kName only.
  std::vector<ContentParticle> children;  ///< kSeq / kChoice.
};

enum class ContentType { kEmpty, kAny, kPcdataOnly, kMixed, kChildren };

struct ElementDecl {
  std::string name;
  ContentType type = ContentType::kEmpty;
  ContentParticle model;                 ///< valid when type == kChildren.
  std::vector<std::string> mixed_names;  ///< valid when type == kMixed.
};

enum class AttrType { kCdata, kId, kIdref, kIdrefs, kNmtoken, kEnumerated };
enum class AttrDefaultMode { kRequired, kImplied, kFixed, kDefault };

struct AttrDecl {
  std::string element;
  std::string name;
  AttrType type = AttrType::kCdata;
  AttrDefaultMode mode = AttrDefaultMode::kImplied;
  std::string default_value;
  std::vector<std::string> enum_values;  ///< kEnumerated only.
};

/// Summary of how a child element occurs within its parent's content model;
/// this is exactly the information the Shared Inlining mapper needs.
struct ChildOccurrence {
  std::string name;
  bool repeated = false;  ///< may occur more than once (under * / + / twice).
  bool optional = false;  ///< may be absent (under ? / * / choice branch).
};

/// A parsed Document Type Definition.
class Dtd {
 public:
  /// Parses the *internal subset* syntax: a sequence of <!ELEMENT ...> and
  /// <!ATTLIST ...> declarations (comments allowed). Returns ParseError with
  /// line info on malformed input.
  static Result<Dtd> Parse(std::string_view text);

  const std::vector<ElementDecl>& elements() const { return elements_; }
  const std::vector<AttrDecl>& attributes() const { return attributes_; }

  const ElementDecl* FindElement(std::string_view name) const;
  const AttrDecl* FindAttribute(std::string_view element,
                                std::string_view attr) const;
  std::vector<const AttrDecl*> AttributesOf(std::string_view element) const;

  /// The first declared element that is not referenced in any other element's
  /// content model — the conventional document root.
  std::string RootName() const;

  /// Flattened child-element occurrence info for `element` (empty for
  /// EMPTY/PCDATA-only elements). ANY returns an empty list (treated as
  /// unmappable by the inliner).
  std::vector<ChildOccurrence> ChildElements(std::string_view element) const;

  /// True if the element's content model is exactly (#PCDATA).
  bool IsPcdataOnly(std::string_view element) const;

  void AddElement(ElementDecl decl);
  void AddAttribute(AttrDecl decl);

 private:
  std::vector<ElementDecl> elements_;
  std::vector<AttrDecl> attributes_;
  std::map<std::string, size_t, std::less<>> element_index_;
};

}  // namespace xupd::xml

#endif  // XUPD_XML_DTD_H_
