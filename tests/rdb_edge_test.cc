// Edge cases and failure paths of the relational engine.
#include <gtest/gtest.h>

#include "common/stopwatch.h"
#include "rdb/database.h"

namespace xupd::rdb {
namespace {

class RdbEdgeTest : public ::testing::Test {
 protected:
  void Must(const std::string& sql) {
    Status s = db_.Execute(sql);
    ASSERT_TRUE(s.ok()) << sql << " -> " << s;
  }
  Database db_;
};

TEST_F(RdbEdgeTest, UnknownTableAndColumnErrors) {
  EXPECT_EQ(db_.Execute("SELECT * FROM nosuch").code(), StatusCode::kNotFound);
  Must("CREATE TABLE t (a INTEGER)");
  EXPECT_EQ(db_.Execute("SELECT b FROM t").code(), StatusCode::kNotFound);
  EXPECT_EQ(db_.Execute("INSERT INTO t (b) VALUES (1)").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.Execute("UPDATE t SET b = 1").code(), StatusCode::kNotFound);
  EXPECT_EQ(db_.Execute("CREATE INDEX i ON t (b)").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.Execute("CREATE INDEX i ON nosuch (a)").code(),
            StatusCode::kNotFound);
}

TEST_F(RdbEdgeTest, AmbiguousColumnInJoin) {
  Must("CREATE TABLE a (id INTEGER)");
  Must("CREATE TABLE b (id INTEGER)");
  Must("INSERT INTO a VALUES (1)");
  Must("INSERT INTO b VALUES (1)");
  auto r = db_.ExecuteQuery("SELECT id FROM a, b");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  auto ok = db_.ExecuteQuery("SELECT a.id FROM a, b");
  EXPECT_TRUE(ok.ok());
}

TEST_F(RdbEdgeTest, SelfJoinWithAliases) {
  Must("CREATE TABLE n (id INTEGER, parentId INTEGER)");
  Must("CREATE INDEX n_id ON n (id)");
  Must("INSERT INTO n VALUES (1, NULL)");
  Must("INSERT INTO n VALUES (2, 1)");
  Must("INSERT INTO n VALUES (3, 2)");
  auto r = db_.ExecuteQuery(
      "SELECT c.id FROM n c, n p WHERE c.parentId = p.id AND p.parentId = 1");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 3);
}

TEST_F(RdbEdgeTest, DivisionByZero) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (1)");
  EXPECT_FALSE(db_.ExecuteQuery("SELECT a / 0 FROM t").ok());
}

TEST_F(RdbEdgeTest, UnionArityMismatch) {
  Must("CREATE TABLE t (a INTEGER, b INTEGER)");
  auto r = db_.ExecuteQuery(
      "(SELECT a FROM t) UNION ALL (SELECT a, b FROM t)");
  EXPECT_FALSE(r.ok());
}

TEST_F(RdbEdgeTest, OrderByUnknownColumn) {
  Must("CREATE TABLE t (a INTEGER)");
  EXPECT_FALSE(db_.ExecuteQuery("SELECT a FROM t ORDER BY z").ok());
}

TEST_F(RdbEdgeTest, TriggerOnlyAfterDeleteSupported) {
  Must("CREATE TABLE t (a INTEGER)");
  EXPECT_FALSE(db_.Execute("CREATE TRIGGER x AFTER INSERT ON t FOR EACH ROW "
                           "BEGIN DELETE FROM t; END")
                   .ok());
}

TEST_F(RdbEdgeTest, DuplicateTriggerNameRejected) {
  Must("CREATE TABLE p (id INTEGER)");
  Must("CREATE TABLE c (id INTEGER, parentId INTEGER)");
  Must("CREATE TRIGGER x AFTER DELETE ON p FOR EACH ROW BEGIN "
       "DELETE FROM c WHERE parentId = OLD.id; END");
  EXPECT_EQ(db_.Execute("CREATE TRIGGER x AFTER DELETE ON p FOR EACH ROW "
                        "BEGIN DELETE FROM c WHERE parentId = OLD.id; END")
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(RdbEdgeTest, RecursiveSchemaTriggersTerminate) {
  // A self-referencing table with a per-row trigger: deleting a chain head
  // cascades through the whole chain without infinite recursion.
  Must("CREATE TABLE n (id INTEGER, parentId INTEGER)");
  Must("CREATE INDEX n_pid ON n (parentId)");
  Must("CREATE TRIGGER n_del AFTER DELETE ON n FOR EACH ROW BEGIN "
       "DELETE FROM n WHERE parentId = OLD.id; END");
  for (int i = 1; i <= 20; ++i) {
    Must("INSERT INTO n VALUES (" + std::to_string(i) + ", " +
         (i == 1 ? std::string("NULL") : std::to_string(i - 1)) + ")");
  }
  Must("DELETE FROM n WHERE id = 1");
  auto r = db_.ExecuteQuery("SELECT COUNT(*) FROM n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);
}

TEST_F(RdbEdgeTest, OldColumnOutsideTriggerFails) {
  Must("CREATE TABLE t (a INTEGER)");
  EXPECT_FALSE(db_.ExecuteQuery("SELECT OLD.a FROM t").ok());
}

TEST_F(RdbEdgeTest, CteShadowsNothingAndExpires) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (5)");
  auto r = db_.ExecuteQuery(
      "WITH w (x) AS (SELECT a FROM t) SELECT x FROM w");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 5);
  // The CTE does not persist beyond its statement.
  EXPECT_FALSE(db_.ExecuteQuery("SELECT * FROM w").ok());
}

TEST_F(RdbEdgeTest, CtesChainInOrder) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (1)");
  auto r = db_.ExecuteQuery(R"(
      WITH w1 (x) AS (SELECT a + 1 FROM t),
           w2 (y) AS (SELECT x * 10 FROM w1)
      SELECT y FROM w2)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows[0][0].AsInt(), 20);
}

TEST_F(RdbEdgeTest, EmptyInListAndSubquery) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("CREATE TABLE e (b INTEGER)");
  Must("INSERT INTO t VALUES (1)");
  auto r = db_.ExecuteQuery(
      "SELECT COUNT(*) FROM t WHERE a IN (SELECT b FROM e)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);
  auto r2 = db_.ExecuteQuery(
      "SELECT COUNT(*) FROM t WHERE a NOT IN (SELECT b FROM e)");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows[0][0].AsInt(), 1);
}

TEST_F(RdbEdgeTest, DeleteEverythingThenReuse) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("CREATE INDEX t_a ON t (a)");
  for (int i = 0; i < 10; ++i) {
    Must("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  Must("DELETE FROM t");
  auto r = db_.ExecuteQuery("SELECT COUNT(*) FROM t WHERE a = 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);
  Must("INSERT INTO t VALUES (3)");
  r = db_.ExecuteQuery("SELECT COUNT(*) FROM t WHERE a = 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

TEST_F(RdbEdgeTest, StatementLatencyIsObservable) {
  Must("CREATE TABLE t (a INTEGER)");
  db_.set_statement_latency_us(2000);  // 2 ms
  Stopwatch sw;
  Must("INSERT INTO t VALUES (1)");
  EXPECT_GE(sw.ElapsedSeconds(), 0.0018);
  db_.set_statement_latency_us(0);
}

TEST_F(RdbEdgeTest, MixedTypeComparisonCoercesNumericStrings) {
  Must("CREATE TABLE t (a VARCHAR)");
  Must("INSERT INTO t VALUES ('0042')");
  auto r = db_.ExecuteQuery("SELECT COUNT(*) FROM t WHERE a = 42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

}  // namespace
}  // namespace xupd::rdb
