#include "rdb/snapshot.h"

#include <cstring>
#include <vector>

#include "rdb/database.h"
#include "rdb/table.h"
#include "rdb/vfs.h"
#include "rdb/wal.h"

namespace xupd::rdb {

namespace {

constexpr char kSnapshotMagic[8] = {'X', 'U', 'P', 'D', 'S', 'N', 'A', 'P'};
// v2 added the u64 wal_offset field after next_id (off-thread checkpoints
// keep the WAL and record how much of it the snapshot already folds in).
constexpr uint32_t kSnapshotFormatVersion = 2;

Status WriteFileDurably(Vfs* vfs, const std::string& path,
                        const std::string& data) {
  int err = 0;
  std::unique_ptr<VfsFile> file =
      vfs->Open(path, Vfs::OpenMode::kTruncate, &err);
  if (file == nullptr) return ErrnoStatus("cannot create snapshot", path, err);
  XUPD_RETURN_IF_ERROR(WriteFully(file.get(), data.data(), data.size(),
                                  "cannot write snapshot", path));
  if ((err = file->Sync()) != 0) {
    return ErrnoStatus("cannot fsync snapshot", path, err);
  }
  if ((err = file->Close()) != 0) {
    return ErrnoStatus("cannot close snapshot", path, err);
  }
  return Status::OK();
}

/// Schema + index-definition block shared by both writers.
void PutTableHeader(std::string* out, const Table* t) {
  const TableSchema& schema = t->schema();
  binio::PutString(out, schema.name());
  binio::PutU32(out, static_cast<uint32_t>(schema.column_count()));
  for (const ColumnDef& c : schema.columns()) {
    binio::PutString(out, c.name);
    binio::PutU8(out, static_cast<uint8_t>(c.type));
  }
}

void PutTableIndexes(std::string* out, const Table* t) {
  binio::PutU32(out, static_cast<uint32_t>(t->indexes().size()));
  for (const auto& index : t->indexes()) {
    binio::PutString(out, index->name());
    binio::PutU32(out, static_cast<uint32_t>(index->column()));
  }
}

Status PutTriggers(std::string* out,
                   const std::vector<std::string>& trigger_sql) {
  binio::PutU32(out, static_cast<uint32_t>(trigger_sql.size()));
  for (const std::string& sql : trigger_sql) {
    if (sql.empty()) {
      return Status::Internal(
          "trigger has no CREATE TRIGGER text to checkpoint");
    }
    binio::PutString(out, sql);
  }
  return Status::OK();
}

Status InstallSnapshot(const Database& db, Vfs* vfs, const std::string& path,
                       const std::string& tmp_path, std::string* out,
                       bool* renamed, uint64_t t0) {
  binio::PutU32(out, binio::Crc32(out->data(), out->size()));
  XUPD_RETURN_IF_ERROR(WriteFileDurably(vfs, tmp_path, *out));
  if (int err = vfs->Rename(tmp_path, path); err != 0) {
    return ErrnoStatus("cannot rename snapshot into place", path, err);
  }
  if (renamed != nullptr) *renamed = true;
  if (int err = vfs->SyncDir(path); err != 0) {
    return ErrnoStatus("cannot fsync snapshot directory", path, err);
  }
  db.metrics().GetHistogram("snapshot.write")->Record(MonotonicNanos() - t0);
  return Status::OK();
}

}  // namespace

Status WriteSnapshot(const Database& db, Vfs* vfs, const std::string& path,
                     const std::string& tmp_path, uint64_t epoch,
                     uint64_t wal_offset, bool* renamed) {
  const uint64_t t0 = MonotonicNanos();
  if (renamed != nullptr) *renamed = false;
  std::string out(kSnapshotMagic, sizeof(kSnapshotMagic));
  binio::PutU32(&out, kSnapshotFormatVersion);
  binio::PutU64(&out, epoch);
  binio::PutI64(&out, db.next_id());
  binio::PutU64(&out, wal_offset);

  std::vector<const Table*> tables;
  for (const std::string& name : db.TableNames()) {
    const Table* t = db.FindTable(name);
    if (t != nullptr && t->durable()) tables.push_back(t);
  }
  binio::PutU32(&out, static_cast<uint32_t>(tables.size()));
  for (const Table* t : tables) {
    PutTableHeader(&out, t);
    // Every slot, live or tombstoned: row ids are physical addresses the
    // WAL's redo records point at, so dead slots must keep their positions.
    binio::PutU64(&out, t->capacity());
    for (size_t rowid = 0; rowid < t->capacity(); ++rowid) {
      binio::PutU8(&out, t->is_live(rowid) ? 1 : 0);
      for (const Value& v : t->row_span(rowid)) binio::PutValue(&out, v);
    }
    PutTableIndexes(&out, t);
  }

  std::vector<std::string> trigger_sql;
  for (const auto& trigger : db.triggers()) trigger_sql.push_back(trigger.sql);
  XUPD_RETURN_IF_ERROR(PutTriggers(&out, trigger_sql));
  return InstallSnapshot(db, vfs, path, tmp_path, &out, renamed, t0);
}

Status WriteSnapshotAsOf(const Database& db, Vfs* vfs, const std::string& path,
                         const std::string& tmp_path,
                         const CheckpointCapture& capture, bool* renamed) {
  const uint64_t t0 = MonotonicNanos();
  if (renamed != nullptr) *renamed = false;
  std::string out(kSnapshotMagic, sizeof(kSnapshotMagic));
  binio::PutU32(&out, kSnapshotFormatVersion);
  binio::PutU64(&out, capture.epoch);
  binio::PutI64(&out, capture.next_id);
  binio::PutU64(&out, capture.wal_offset);

  binio::PutU32(&out, static_cast<uint32_t>(capture.tables.size()));
  Row staging;
  for (const auto& [t, slot_count] : capture.tables) {
    PutTableHeader(&out, t);
    const size_t arity = t->arity();
    // Exactly the slot count captured at the pin boundary: slots appended
    // later are covered by WAL replay past capture.wal_offset, whose
    // insert records assume rowid == slot count at this point.
    binio::PutU64(&out, static_cast<uint64_t>(slot_count));
    for (size_t rowid = 0; rowid < slot_count; ++rowid) {
      staging.clear();
      if (t->SnapshotReadRow(rowid, capture.pin_epoch, &staging)) {
        binio::PutU8(&out, 1);
        for (const Value& v : staging) binio::PutValue(&out, v);
      } else {
        // Dead (or never visible) at the pinned epoch: a tombstone slot.
        // Replay never reads a dead slot's cells, so NULLs suffice.
        binio::PutU8(&out, 0);
        for (size_t c = 0; c < arity; ++c) binio::PutValue(&out, Value());
      }
    }
    PutTableIndexes(&out, t);
  }

  XUPD_RETURN_IF_ERROR(PutTriggers(&out, capture.trigger_sql));
  return InstallSnapshot(db, vfs, path, tmp_path, &out, renamed, t0);
}

Result<SnapshotLoadInfo> LoadSnapshot(Database* db, Vfs* vfs,
                                      const std::string& path) {
  XUPD_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(vfs, path));
  if (data.size() < sizeof(kSnapshotMagic) + 4 + 4 ||
      std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::Internal("'" + path + "' is not a snapshot file");
  }
  {
    binio::Reader v(data.data() + sizeof(kSnapshotMagic), 4);
    uint32_t version = v.U32();
    if (version != kSnapshotFormatVersion) {
      return Status::Internal(
          "snapshot format version mismatch: file has " +
          std::to_string(version) + ", this build reads " +
          std::to_string(kSnapshotFormatVersion));
    }
  }
  {
    binio::Reader c(data.data() + data.size() - 4, 4);
    uint32_t stored = c.U32();
    uint32_t actual = binio::Crc32(data.data(), data.size() - 4);
    if (stored != actual) {
      return Status::Internal("snapshot '" + path +
                              "' failed its CRC check (truncated or corrupt)");
    }
  }

  binio::Reader r(data.data() + sizeof(kSnapshotMagic) + 4,
                  data.size() - sizeof(kSnapshotMagic) - 4 - 4);
  SnapshotLoadInfo info;
  info.epoch = r.U64();
  int64_t next_id = r.I64();
  info.wal_offset = r.U64();
  uint32_t table_count = r.U32();
  for (uint32_t ti = 0; r.ok() && ti < table_count; ++ti) {
    std::string name = r.String();
    uint32_t ncols = r.U32();
    std::vector<ColumnDef> cols;
    for (uint32_t ci = 0; r.ok() && ci < ncols; ++ci) {
      ColumnDef def;
      def.name = r.String();
      def.type = static_cast<ColumnType>(r.U8());
      cols.push_back(std::move(def));
    }
    if (!r.ok()) break;
    auto table = db->CreateTableDirect(TableSchema(name, std::move(cols)),
                                       /*transactional=*/true,
                                       /*durable=*/true);
    if (!table.ok()) return table.status();
    uint64_t slots = r.U64();
    for (uint64_t s = 0; r.ok() && s < slots; ++s) {
      bool live = r.U8() != 0;
      Row row;
      row.reserve(ncols);
      for (uint32_t ci = 0; r.ok() && ci < ncols; ++ci) {
        row.push_back(r.ReadValue());
      }
      if (!r.ok()) break;
      table.value()->LoadSlot(std::move(row), live);
    }
    uint32_t index_count = r.U32();
    for (uint32_t ii = 0; r.ok() && ii < index_count; ++ii) {
      std::string index_name = r.String();
      uint32_t column = r.U32();
      if (!r.ok()) break;
      XUPD_RETURN_IF_ERROR(
          table.value()->CreateIndex(index_name, static_cast<int>(column)));
    }
  }
  uint32_t trigger_count = r.U32();
  for (uint32_t ti = 0; r.ok() && ti < trigger_count; ++ti) {
    std::string sql = r.String();
    if (!r.ok()) break;
    XUPD_RETURN_IF_ERROR(db->Execute(sql));
  }
  if (!r.ok()) {
    return Status::Internal("snapshot '" + path + "' is malformed");
  }
  db->set_next_id(next_id);
  return info;
}

std::vector<std::string> VerifySnapshotFile(Vfs* vfs,
                                            const std::string& path) {
  std::vector<std::string> violations;
  auto read = ReadWholeFile(vfs, path);
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kNotFound) return violations;
    violations.push_back("snapshot unreadable: " + read.status().message());
    return violations;
  }
  const std::string& data = read.value();
  if (data.size() < sizeof(kSnapshotMagic) + 4 + 4 ||
      std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    violations.push_back("snapshot header corrupt: '" + path + "'");
    return violations;
  }
  binio::Reader v(data.data() + sizeof(kSnapshotMagic), 4);
  uint32_t version = v.U32();
  if (version != kSnapshotFormatVersion) {
    violations.push_back("snapshot version mismatch: file has " +
                         std::to_string(version));
  }
  binio::Reader c(data.data() + data.size() - 4, 4);
  uint32_t stored = c.U32();
  uint32_t actual = binio::Crc32(data.data(), data.size() - 4);
  if (stored != actual) {
    violations.push_back("snapshot CRC mismatch: '" + path + "'");
  }
  return violations;
}

uint64_t SnapshotEpochOnDisk(Vfs* vfs, const std::string& path) {
  auto read = ReadWholeFile(vfs, path);
  if (!read.ok()) return 0;
  const std::string& data = read.value();
  size_t header = sizeof(kSnapshotMagic) + 4;
  if (data.size() < header + 8 ||
      std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return 0;
  }
  binio::Reader r(data.data() + header, 8);
  return r.U64();
}

}  // namespace xupd::rdb
