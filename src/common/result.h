// Result<T>: a value-or-Status holder, the return type of fallible factories
// and evaluators throughout xupd.
#ifndef XUPD_COMMON_RESULT_H_
#define XUPD_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace xupd {

/// Holds either a T or a non-OK Status. Construction from a value yields OK;
/// construction from a Status requires a non-OK status.
template <typename T>
class Result {
 public:
  /// Implicit from value (OK).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ engaged
  std::optional<T> value_;
};

}  // namespace xupd

#endif  // XUPD_COMMON_RESULT_H_
