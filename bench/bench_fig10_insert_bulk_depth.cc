// Figure 10: insert performance, bulk workload (replicate every root
// subtree), fixed sf=100 fanout=4, depth 1..6. Series: tuple, table, asr.
#include <cstdio>
#include <cstdlib>

#include "harness.h"

using namespace xupd;
using bench::MeasureOnFreshStores;
using engine::DeleteStrategy;
using engine::InsertStrategy;

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  int max_depth = argc > 2 ? std::atoi(argv[2]) : 6;
  bench::PrintHeader(
      "Figure 10: insert (subtree copy), bulk workload, sf=100 fanout=4",
      "depth");
  const InsertStrategy methods[] = {InsertStrategy::kTuple,
                                    InsertStrategy::kTable,
                                    InsertStrategy::kAsr};
  for (int depth = 1; depth <= max_depth; ++depth) {
    workload::SyntheticSpec spec;
    spec.scaling_factor = 100;
    spec.depth = depth;
    spec.fanout = 4;
    auto gen = workload::GenerateFixedSynthetic(spec, 42);
    if (!gen.ok()) return 1;
    for (InsertStrategy method : methods) {
      // Bulk workload: ONE insert operation replicating every root subtree
      // (the set-oriented strategies batch their statements across all
      // subtrees, which is what the paper's bulk numbers measure).
      double t = MeasureOnFreshStores(
          *gen, DeleteStrategy::kCascade, method,
          [](engine::RelationalStore* store) {
            Status s = store->CopySubtreesWhere("n1", "", store->root_id());
            if (!s.ok()) {
              std::fprintf(stderr, "copy failed: %s\n", s.ToString().c_str());
              std::abort();
            }
          },
          {runs});
      bench::PrintPoint(ToString(method), depth, t);
    }
  }

  // insert_batch_size sweep (ROADMAP open item): the tuple strategy is the
  // batching-sensitive path; sweep it at a representative depth and emit one
  // JSON row per setting so the default can be picked from data.
  {
    int depth = max_depth < 4 ? max_depth : 4;
    workload::SyntheticSpec spec;
    spec.scaling_factor = 100;
    spec.depth = depth;
    spec.fanout = 4;
    auto gen = workload::GenerateFixedSynthetic(spec, 42);
    if (!gen.ok()) return 1;
    for (int batch : {1, 16, 64, 256}) {
      engine::RelationalStore::Options options;
      options.delete_strategy = DeleteStrategy::kCascade;
      options.insert_strategy = InsertStrategy::kTuple;
      options.insert_batch_size = batch;
      bench::MeasuredRuns t = bench::MeasureOnFreshStores(
          *gen, options,
          [](engine::RelationalStore* store) {
            Status s = store->CopySubtreesWhere("n1", "", store->root_id());
            if (!s.ok()) std::abort();
          },
          {runs});
      std::printf(
          "{\"bench\":\"fig10_insert_bulk_depth\",\"sweep\":"
          "\"insert_batch_size\",\"batch\":%d,\"depth\":%d,\"sf\":100,"
          "\"seconds\":%.6f,\"run_p50_us\":%.1f,\"run_p99_us\":%.1f,%s\n",
          batch, depth, t.avg_seconds, t.run_ns.Percentile(50) / 1e3,
          t.run_ns.Percentile(99) / 1e3, bench::JsonTail().c_str());
    }
  }
  return 0;
}
