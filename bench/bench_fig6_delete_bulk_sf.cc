// Figure 6: delete performance, bulk workload, fixed fanout=1 depth=8,
// scaling factor 100..800. A bulk delete removes every root subtree (one
// operation); series: asr, per-stm trigger, per-tuple trigger (cascade is
// reported too — the paper omits it as ~per-stm).
#include <cstdio>

#include "harness.h"

using namespace xupd;
using bench::MeasureOnFreshStores;
using engine::DeleteStrategy;
using engine::InsertStrategy;

int main(int argc, char** argv) {
  int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  bench::PrintHeader(
      "Figure 6: delete, bulk workload, fanout=1 depth=8 (time vs sf)", "sf");
  const DeleteStrategy methods[] = {
      DeleteStrategy::kAsr, DeleteStrategy::kPerStatementTrigger,
      DeleteStrategy::kPerTupleTrigger, DeleteStrategy::kCascade};
  for (int sf : {100, 200, 400, 800}) {
    workload::SyntheticSpec spec;
    spec.scaling_factor = sf;
    spec.depth = 8;
    spec.fanout = 1;
    auto gen = workload::GenerateFixedSynthetic(spec, /*seed=*/42);
    if (!gen.ok()) {
      std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
      return 1;
    }
    for (DeleteStrategy method : methods) {
      bench::MeasuredRuns t = MeasureOnFreshStores(
          *gen, method, InsertStrategy::kTable,
          [](engine::RelationalStore* store) {
            Status s = store->DeleteWhere("n1", "");
            if (!s.ok()) {
              std::fprintf(stderr, "delete failed: %s\n", s.ToString().c_str());
              std::abort();
            }
          },
          {runs});
      bench::PrintPoint(ToString(method), sf, t);
      std::printf(
          "{\"bench\":\"fig6_delete_bulk_sf\",\"method\":\"%s\","
          "\"sf\":%d,\"seconds\":%.6f,\"run_p50_us\":%.1f,"
          "\"run_p99_us\":%.1f,%s\n",
          ToString(method), sf, t.avg_seconds, t.run_ns.Percentile(50) / 1e3,
          t.run_ns.Percentile(99) / 1e3, bench::JsonTail().c_str());
    }
  }
  return 0;
}
