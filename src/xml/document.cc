#include "xml/document.h"

namespace xupd::xml {

namespace {

void CollectIds(Element* e, const std::string& id_attr,
                std::unordered_map<std::string, Element*>* map) {
  if (const Attribute* a = e->FindAttribute(id_attr)) {
    map->emplace(a->value, e);  // first occurrence wins on duplicate IDs
  }
  for (const auto& c : e->children()) {
    if (c->is_element()) {
      CollectIds(static_cast<Element*>(c.get()), id_attr, map);
    }
  }
}

}  // namespace

Element* Document::FindById(std::string_view id) const {
  if (id_map_dirty_) RebuildIdMap();
  auto it = id_map_.find(std::string(id));
  return it == id_map_.end() ? nullptr : it->second;
}

void Document::RebuildIdMap() const {
  id_map_.clear();
  if (root_ != nullptr) {
    CollectIds(root_.get(), id_attribute_, &id_map_);
  }
  id_map_dirty_ = false;
}

std::unique_ptr<Document> Document::Clone() const {
  auto copy = std::make_unique<Document>();
  copy->id_attribute_ = id_attribute_;
  copy->ref_attributes_ = ref_attributes_;
  if (root_ != nullptr) copy->set_root(root_->Clone());
  return copy;
}

}  // namespace xupd::xml
