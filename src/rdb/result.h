// Materialized query results.
#ifndef XUPD_RDB_RESULT_H_
#define XUPD_RDB_RESULT_H_

#include <string>
#include <vector>

#include "rdb/schema.h"

namespace xupd::rdb {

struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  int ColumnIndex(std::string_view name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (EqualsIgnoreCase(columns[i], name)) return static_cast<int>(i);
    }
    return -1;
  }

  std::string ToString(size_t max_rows = 20) const;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_RESULT_H_
