#include "xml/serializer.h"

#include <algorithm>

#include "common/str_util.h"

namespace xupd::xml {

namespace {

void WriteOpenTag(const Element& e, const SerializeOptions& options,
                  std::string* out) {
  *out += '<';
  *out += e.name();
  std::vector<std::pair<std::string, std::string>> attrs;
  for (const Attribute& a : e.attributes()) {
    attrs.emplace_back(a.name, a.value);
  }
  for (const RefList& r : e.ref_lists()) {
    attrs.emplace_back(r.name, Join(r.targets, " "));
  }
  if (options.sort_attributes) {
    std::sort(attrs.begin(), attrs.end());
  }
  for (const auto& [name, value] : attrs) {
    *out += ' ';
    *out += name;
    *out += "=\"";
    *out += XmlEscape(value);
    *out += '"';
  }
}

bool HasOnlyTextChildren(const Element& e) {
  for (const auto& c : e.children()) {
    if (!c->is_text()) return false;
  }
  return true;
}

void SerializeNode(const Node& node, const SerializeOptions& options, int depth,
                   std::string* out) {
  std::string pad =
      options.pretty ? std::string(static_cast<size_t>(depth * options.indent), ' ')
                     : "";
  if (node.is_text()) {
    *out += pad;
    *out += XmlEscape(static_cast<const Text&>(node).value());
    if (options.pretty) *out += '\n';
    return;
  }
  const auto& e = static_cast<const Element&>(node);
  *out += pad;
  WriteOpenTag(e, options, out);
  if (e.children().empty()) {
    *out += "/>";
    if (options.pretty) *out += '\n';
    return;
  }
  if (HasOnlyTextChildren(e)) {
    *out += '>';
    for (const auto& c : e.children()) {
      *out += XmlEscape(static_cast<const Text*>(c.get())->value());
    }
    *out += "</";
    *out += e.name();
    *out += '>';
    if (options.pretty) *out += '\n';
    return;
  }
  *out += '>';
  if (options.pretty) *out += '\n';
  for (const auto& c : e.children()) {
    SerializeNode(*c, options, depth + 1, out);
  }
  *out += pad;
  *out += "</";
  *out += e.name();
  *out += '>';
  if (options.pretty) *out += '\n';
}

}  // namespace

std::string Serialize(const Node& node, const SerializeOptions& options) {
  std::string out;
  SerializeNode(node, options, 0, &out);
  return out;
}

std::string Serialize(const Document& doc, const SerializeOptions& options) {
  if (doc.root() == nullptr) return "";
  return Serialize(*doc.root(), options);
}

std::string Canonical(const Node& node) {
  SerializeOptions options;
  options.pretty = false;
  options.sort_attributes = true;
  return Serialize(node, options);
}

std::string Canonical(const Document& doc) {
  if (doc.root() == nullptr) return "";
  return Canonical(*doc.root());
}

}  // namespace xupd::xml
