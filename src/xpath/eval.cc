#include "xpath/eval.h"

#include <algorithm>

#include "common/str_util.h"

namespace xupd::xpath {

namespace {

bool NameMatches(const std::string& pattern, const std::string& name) {
  return pattern == "*" || pattern == name;
}

void CollectDescendants(xml::Element* e, const std::string& name,
                        std::vector<XmlObject>* out) {
  if (NameMatches(name, e->name())) {
    out->push_back(XmlObject::OfElement(e));
  }
  for (const auto& c : e->children()) {
    if (c->is_element()) {
      CollectDescendants(static_cast<xml::Element*>(c.get()), name, out);
    }
  }
}

}  // namespace

Result<std::vector<XmlObject>> Evaluator::ApplyStep(
    const Step& step, const std::vector<XmlObject>& input,
    const Environment& env, bool from_document_head) const {
  std::vector<XmlObject> matched;
  for (const XmlObject& obj : input) {
    switch (step.axis) {
      case Step::Axis::kChild: {
        if (!obj.is_element()) break;
        // From the document head, the first step may name the root element
        // itself (the paper writes both document(...)/db/... and
        // document(...)/paper); try the root first, then its children.
        if (from_document_head && NameMatches(step.name, obj.element->name())) {
          matched.push_back(XmlObject::OfElement(obj.element));
          break;
        }
        for (const auto& c : obj.element->children()) {
          if (c->is_element()) {
            auto* e = static_cast<xml::Element*>(c.get());
            if (NameMatches(step.name, e->name())) {
              matched.push_back(XmlObject::OfElement(e));
            }
          }
        }
        break;
      }
      case Step::Axis::kDescendant: {
        if (!obj.is_element()) break;
        CollectDescendants(obj.element, step.name, &matched);
        break;
      }
      case Step::Axis::kAttribute: {
        if (!obj.is_element()) break;
        if (step.name == "*") {
          for (const xml::Attribute& a : obj.element->attributes()) {
            matched.push_back(XmlObject::OfAttribute(obj.element, a.name));
          }
        } else if (obj.element->FindAttribute(step.name) != nullptr) {
          matched.push_back(XmlObject::OfAttribute(obj.element, step.name));
        }
        break;
      }
      case Step::Axis::kRefEntry: {
        if (!obj.is_element()) break;
        for (const xml::RefList& list : obj.element->ref_lists()) {
          if (!NameMatches(step.name, list.name)) continue;
          for (size_t i = 0; i < list.targets.size(); ++i) {
            if (step.ref_target == "*" || list.targets[i] == step.ref_target) {
              matched.push_back(
                  XmlObject::OfRefEntry(obj.element, list.name, i));
            }
          }
        }
        break;
      }
      case Step::Axis::kDeref: {
        // IDREF entry or attribute value -> target element.
        std::string target_id;
        if (obj.is_ref_entry() || obj.is_attribute()) {
          target_id = StringValueOf(obj);
        } else {
          break;
        }
        xml::Element* target = doc_->FindById(target_id);
        if (target != nullptr && NameMatches(step.name, target->name())) {
          matched.push_back(XmlObject::OfElement(target));
        }
        break;
      }
      case Step::Axis::kTextNodes: {
        if (!obj.is_element()) break;
        for (size_t i = 0; i < obj.element->child_count(); ++i) {
          xml::Node* c = obj.element->child(i);
          if (c->is_text()) {
            matched.push_back(
                XmlObject::OfText(obj.element, static_cast<xml::Text*>(c)));
          }
        }
        break;
      }
    }
  }
  // Assign positions before predicate filtering so index() sees the
  // pre-filter position among matched candidates.
  for (size_t i = 0; i < matched.size(); ++i) {
    matched[i].binding_index = i;
  }
  if (step.predicates.empty()) return matched;
  std::vector<XmlObject> filtered;
  for (const XmlObject& obj : matched) {
    bool keep = true;
    for (const Predicate& pred : step.predicates) {
      auto ok = EvalPredicate(pred, env, obj);
      if (!ok.ok()) return ok.status();
      if (!ok.value()) {
        keep = false;
        break;
      }
    }
    if (keep) filtered.push_back(obj);
  }
  return filtered;
}

Result<std::vector<XmlObject>> Evaluator::Eval(const PathExpr& path,
                                               const Environment& env,
                                               const XmlObject& context) const {
  std::vector<XmlObject> current;
  bool from_document_head = false;
  switch (path.head) {
    case PathExpr::Head::kDocument:
      if (doc_->root() == nullptr) {
        return Status::InvalidArgument("document has no root");
      }
      current.push_back(XmlObject::OfElement(doc_->root()));
      from_document_head = true;
      break;
    case PathExpr::Head::kVariable: {
      auto it = env.find(path.variable);
      if (it == env.end()) {
        return Status::NotFound("unbound variable $" + path.variable);
      }
      current.push_back(it->second);
      break;
    }
    case PathExpr::Head::kContext:
      if (!context.is_null()) {
        current.push_back(context);
      } else if (doc_->root() != nullptr) {
        current.push_back(XmlObject::OfElement(doc_->root()));
        from_document_head = true;
      } else {
        return Status::InvalidArgument("no context for relative path");
      }
      break;
  }
  for (const Step& step : path.steps) {
    auto next = ApplyStep(step, current, env, from_document_head);
    if (!next.ok()) return next.status();
    current = std::move(next).value();
    from_document_head = false;
    if (current.empty()) break;
  }
  // Positions: a pass-through path ($var / bare context) must preserve the
  // binding_index recorded when the object was first bound — Example 5's
  // WHERE $lab.index() = 0 relies on it. Paths with steps get fresh
  // sequential positions.
  if (!path.steps.empty()) {
    for (size_t i = 0; i < current.size(); ++i) {
      current[i].binding_index = i;
    }
  }
  return current;
}

Result<bool> Evaluator::EvalCompare(const Predicate& pred,
                                    const Environment& env,
                                    const XmlObject& context) const {
  auto objects = Eval(pred.path, env, context);
  if (!objects.ok()) return objects.status();
  auto compare_values = [&](int cmp) {
    switch (pred.op) {
      case Predicate::Op::kEq:
        return cmp == 0;
      case Predicate::Op::kNe:
        return cmp != 0;
      case Predicate::Op::kLt:
        return cmp < 0;
      case Predicate::Op::kLe:
        return cmp <= 0;
      case Predicate::Op::kGt:
        return cmp > 0;
      case Predicate::Op::kGe:
        return cmp >= 0;
    }
    return false;
  };
  for (const XmlObject& obj : *objects) {
    if (pred.path.index_fn) {
      int64_t idx = static_cast<int64_t>(obj.binding_index);
      int64_t rhs = pred.rhs_is_number ? pred.rhs_number : 0;
      int cmp = idx < rhs ? -1 : (idx > rhs ? 1 : 0);
      if (compare_values(cmp)) return true;
      continue;
    }
    std::string value = StringValueOf(obj);
    int cmp;
    int64_t lhs_num;
    if (pred.rhs_is_number && ParseInt64(StripWhitespace(value), &lhs_num)) {
      cmp = lhs_num < pred.rhs_number ? -1 : (lhs_num > pred.rhs_number ? 1 : 0);
    } else {
      std::string rhs = pred.rhs_is_number ? std::to_string(pred.rhs_number)
                                           : pred.rhs_string;
      cmp = value.compare(rhs);
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    if (compare_values(cmp)) return true;
  }
  return false;
}

Result<bool> Evaluator::EvalPredicate(const Predicate& pred,
                                      const Environment& env,
                                      const XmlObject& context) const {
  switch (pred.kind) {
    case Predicate::Kind::kExists: {
      // Special case: a bare `$var.index()` or path ending in index() used
      // as a boolean is not meaningful; treat as existence of the path.
      auto objects = Eval(pred.path, env, context);
      if (!objects.ok()) return objects.status();
      return !objects.value().empty();
    }
    case Predicate::Kind::kCompare:
      return EvalCompare(pred, env, context);
    case Predicate::Kind::kAnd:
      for (const Predicate& c : pred.children) {
        auto r = EvalPredicate(c, env, context);
        if (!r.ok()) return r.status();
        if (!r.value()) return false;
      }
      return true;
    case Predicate::Kind::kOr:
      for (const Predicate& c : pred.children) {
        auto r = EvalPredicate(c, env, context);
        if (!r.ok()) return r.status();
        if (r.value()) return true;
      }
      return false;
    case Predicate::Kind::kNot: {
      auto r = EvalPredicate(pred.children[0], env, context);
      if (!r.ok()) return r.status();
      return !r.value();
    }
  }
  return Status::Internal("unknown predicate kind");
}

}  // namespace xupd::xpath
