#include "xml/validator.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace xupd::xml {

namespace {

// Content-model matching: computes the set of positions reachable after
// matching `particle` starting from each position in `from`, over the
// sequence of child element names. Sets are kept sorted and deduplicated.
using PosSet = std::vector<size_t>;

void AddPos(PosSet* set, size_t pos) {
  auto it = std::lower_bound(set->begin(), set->end(), pos);
  if (it == set->end() || *it != pos) set->insert(it, pos);
}

PosSet MatchOnce(const ContentParticle& p, const std::vector<std::string>& names,
                 const PosSet& from);

PosSet MatchWithQuant(const ContentParticle& p,
                      const std::vector<std::string>& names, const PosSet& from) {
  PosSet result;
  switch (p.quant) {
    case Quant::kOne:
      return MatchOnce(p, names, from);
    case Quant::kOptional: {
      result = from;
      PosSet once = MatchOnce(p, names, from);
      for (size_t pos : once) AddPos(&result, pos);
      return result;
    }
    case Quant::kStar:
    case Quant::kPlus: {
      PosSet frontier = (p.quant == Quant::kStar) ? from : PosSet{};
      PosSet current = from;
      if (p.quant == Quant::kStar) {
        result = from;
      }
      // Iterate to a fixpoint; positions only grow, bounded by names.size()+1.
      while (true) {
        PosSet next = MatchOnce(p, names, current);
        bool changed = false;
        for (size_t pos : next) {
          auto it = std::lower_bound(result.begin(), result.end(), pos);
          if (it == result.end() || *it != pos) {
            result.insert(it, pos);
            changed = true;
          }
        }
        if (!changed) break;
        current = std::move(next);
        if (current.empty()) break;
      }
      return result;
    }
  }
  return result;
}

PosSet MatchOnce(const ContentParticle& p, const std::vector<std::string>& names,
                 const PosSet& from) {
  PosSet result;
  switch (p.kind) {
    case ContentParticle::Kind::kName:
      for (size_t pos : from) {
        if (pos < names.size() && names[pos] == p.name) {
          AddPos(&result, pos + 1);
        }
      }
      return result;
    case ContentParticle::Kind::kSeq: {
      PosSet current = from;
      for (const ContentParticle& c : p.children) {
        current = MatchWithQuant(c, names, current);
        if (current.empty()) return current;
      }
      return current;
    }
    case ContentParticle::Kind::kChoice: {
      for (const ContentParticle& c : p.children) {
        PosSet branch = MatchWithQuant(c, names, from);
        for (size_t pos : branch) AddPos(&result, pos);
      }
      return result;
    }
  }
  return result;
}

bool MatchesModel(const ContentParticle& model,
                  const std::vector<std::string>& names) {
  PosSet end = MatchWithQuant(model, names, PosSet{0});
  return std::binary_search(end.begin(), end.end(), names.size());
}

Status ValidateAttributes(const Element& e, const Dtd& dtd,
                          const ValidateOptions& options) {
  std::vector<const AttrDecl*> decls = dtd.AttributesOf(e.name());
  for (const AttrDecl* decl : decls) {
    bool is_ref =
        decl->type == AttrType::kIdref || decl->type == AttrType::kIdrefs;
    bool present = is_ref ? e.FindRefList(decl->name) != nullptr
                          : e.FindAttribute(decl->name) != nullptr;
    if (decl->mode == AttrDefaultMode::kRequired && !present) {
      return Status::ConstraintViolation("element <" + e.name() +
                                         "> missing required attribute '" +
                                         decl->name + "'");
    }
    if (decl->type == AttrType::kEnumerated && present) {
      const Attribute* a = e.FindAttribute(decl->name);
      if (a != nullptr &&
          std::find(decl->enum_values.begin(), decl->enum_values.end(),
                    a->value) == decl->enum_values.end()) {
        return Status::ConstraintViolation(
            "attribute '" + decl->name + "' of <" + e.name() +
            "> has value '" + a->value + "' outside its enumeration");
      }
    }
    if (decl->type == AttrType::kIdref && present) {
      const RefList* r = e.FindRefList(decl->name);
      if (r != nullptr && r->targets.size() > 1) {
        return Status::ConstraintViolation("IDREF attribute '" + decl->name +
                                           "' of <" + e.name() +
                                           "> holds more than one reference");
      }
    }
  }
  if (options.strict_attributes) {
    for (const Attribute& a : e.attributes()) {
      if (dtd.FindAttribute(e.name(), a.name) == nullptr) {
        return Status::ConstraintViolation("undeclared attribute '" + a.name +
                                           "' on <" + e.name() + ">");
      }
    }
    for (const RefList& r : e.ref_lists()) {
      if (dtd.FindAttribute(e.name(), r.name) == nullptr) {
        return Status::ConstraintViolation("undeclared IDREFS '" + r.name +
                                           "' on <" + e.name() + ">");
      }
    }
  }
  return Status::OK();
}

Status ValidateContent(const Element& e, const Dtd& dtd) {
  const ElementDecl* decl = dtd.FindElement(e.name());
  if (decl == nullptr) {
    return Status::ConstraintViolation("undeclared element <" + e.name() + ">");
  }
  std::vector<std::string> child_names;
  bool has_text = false;
  for (const auto& c : e.children()) {
    if (c->is_element()) {
      child_names.push_back(static_cast<const Element*>(c.get())->name());
    } else {
      has_text = true;
    }
  }
  switch (decl->type) {
    case ContentType::kEmpty:
      if (!child_names.empty() || has_text) {
        return Status::ConstraintViolation("element <" + e.name() +
                                           "> declared EMPTY has content");
      }
      return Status::OK();
    case ContentType::kAny:
      return Status::OK();
    case ContentType::kPcdataOnly:
      if (!child_names.empty()) {
        return Status::ConstraintViolation(
            "element <" + e.name() + "> declared (#PCDATA) has child elements");
      }
      return Status::OK();
    case ContentType::kMixed:
      for (const std::string& n : child_names) {
        if (std::find(decl->mixed_names.begin(), decl->mixed_names.end(), n) ==
            decl->mixed_names.end()) {
          return Status::ConstraintViolation("element <" + n +
                                             "> not allowed in mixed content of <" +
                                             e.name() + ">");
        }
      }
      return Status::OK();
    case ContentType::kChildren:
      if (has_text) {
        // Whitespace-only text was already dropped by the parser; any
        // remaining text in element content is a violation.
        return Status::ConstraintViolation("PCDATA not allowed in element <" +
                                           e.name() + ">");
      }
      if (!MatchesModel(decl->model, child_names)) {
        return Status::ConstraintViolation(
            "children of <" + e.name() + "> do not match its content model");
      }
      return Status::OK();
  }
  return Status::OK();
}

Status ValidateRecursive(const Element& e, const Dtd& dtd,
                         const ValidateOptions& options,
                         std::set<std::string>* seen_ids,
                         std::vector<std::string>* idrefs) {
  XUPD_RETURN_IF_ERROR(ValidateContent(e, dtd));
  XUPD_RETURN_IF_ERROR(ValidateAttributes(e, dtd, options));
  for (const AttrDecl* decl : dtd.AttributesOf(e.name())) {
    if (decl->type == AttrType::kId) {
      if (const Attribute* a = e.FindAttribute(decl->name)) {
        if (!seen_ids->insert(a->value).second) {
          return Status::ConstraintViolation("duplicate ID '" + a->value + "'");
        }
      }
    }
  }
  for (const RefList& r : e.ref_lists()) {
    for (const std::string& target : r.targets) {
      idrefs->push_back(target);
    }
  }
  for (const auto& c : e.children()) {
    if (c->is_element()) {
      XUPD_RETURN_IF_ERROR(ValidateRecursive(*static_cast<const Element*>(c.get()),
                                             dtd, options, seen_ids, idrefs));
    }
  }
  return Status::OK();
}

}  // namespace

Status Validate(const Document& doc, const Dtd& dtd,
                const ValidateOptions& options) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root element");
  }
  std::set<std::string> ids;
  std::vector<std::string> idrefs;
  XUPD_RETURN_IF_ERROR(
      ValidateRecursive(*doc.root(), dtd, options, &ids, &idrefs));
  if (options.check_idref_targets) {
    for (const std::string& target : idrefs) {
      if (ids.find(target) == ids.end()) {
        return Status::ConstraintViolation("dangling IDREF '" + target + "'");
      }
    }
  }
  return Status::OK();
}

Status ValidateElementShallow(const Element& element, const Dtd& dtd,
                              const ValidateOptions& options) {
  XUPD_RETURN_IF_ERROR(ValidateContent(element, dtd));
  return ValidateAttributes(element, dtd, options);
}

}  // namespace xupd::xml
