// Database: catalog of tables + AFTER DELETE triggers, and the SQL entry
// points. Every Execute/ExecuteQuery call parses its SQL text — statement
// issue overhead is part of the cost model the paper studies (§6: "issuing
// multiple separate SQL statements incurs overhead"). Prepare/ExecutePrepared
// model the JDBC PreparedStatement path: the text is parsed once, kept in an
// LRU cache keyed by SQL text, and later executions only bind parameter
// values (they still pay the simulated round-trip latency, but not the
// parse).
#ifndef XUPD_RDB_DATABASE_H_
#define XUPD_RDB_DATABASE_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/str_util.h"
#include "rdb/result.h"
#include "rdb/sql_ast.h"
#include "rdb/stats.h"
#include "rdb/table.h"

namespace xupd::rdb {

/// An immutable parsed statement. Handles stay valid after cache eviction or
/// invalidation (they are shared_ptrs); name resolution happens at execution
/// time, so a handle held across DDL simply re-resolves against the new
/// catalog.
struct PreparedStatement {
  std::string sql;     ///< original text (also the cache key).
  sql::Statement stmt; ///< parsed form.
  int param_count = 0; ///< number of ? placeholders to bind.
};

using StatementHandle = std::shared_ptr<const PreparedStatement>;

/// Renders "INSERT INTO <table> VALUES (?, ...), (?, ...), ..." with `rows`
/// placeholder rows of `columns` placeholders each. Parameter values are
/// bound row-major. Constant for a fixed (table, columns, rows) shape, so
/// batched loads of the same batch size hit the prepared cache.
std::string MultiRowInsertSql(std::string_view table, size_t columns,
                              size_t rows);

class Database {
 public:
  Database() = default;

  /// Parses and executes a DDL/DML statement.
  Status Execute(std::string_view sql);

  /// Parses and executes a SELECT, returning its rows.
  Result<ResultSet> ExecuteQuery(std::string_view sql);

  /// Parses `sql` into a reusable handle, or returns the cached handle when
  /// the same text was prepared before (LRU, invalidated by DDL). DDL
  /// statements parse but are never cached. `cacheable = false` still probes
  /// the cache but never inserts on a miss — for one-shot texts (e.g. with
  /// inlined id lists) that would only evict reusable plans.
  Result<StatementHandle> Prepare(std::string_view sql, bool cacheable = true);

  /// Executes a prepared statement, binding `params` to its ? placeholders
  /// positionally. Pays the per-statement latency but skips the parse.
  Status ExecutePrepared(const StatementHandle& handle,
                         const std::vector<Value>& params = {});
  Result<ResultSet> ExecuteQueryPrepared(const StatementHandle& handle,
                                         const std::vector<Value>& params = {});

  /// Convenience: Prepare (served from the cache after the first call) then
  /// ExecutePrepared.
  Status ExecuteBound(std::string_view sql, const std::vector<Value>& params,
                      bool cacheable = true);
  Result<ResultSet> ExecuteQueryBound(std::string_view sql,
                                      const std::vector<Value>& params,
                                      bool cacheable = true);

  /// Prepared-statement cache introspection (tests/benches).
  size_t prepared_cache_size() const { return cache_lru_.size(); }
  size_t prepared_cache_capacity() const { return cache_capacity_; }
  void set_prepared_cache_capacity(size_t capacity);

  /// Direct bulk-load API (bypasses SQL): used by the shredder to load
  /// documents quickly; benchmark updates always go through Execute().
  Result<Table*> CreateTableDirect(TableSchema schema);
  Status InsertDirect(Table* table, Row row);

  Table* FindTable(std::string_view name);
  const Table* FindTable(std::string_view name) const;
  std::vector<std::string> TableNames() const;

  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

  /// Simulated per-statement issue latency (microseconds), applied to every
  /// Execute/ExecuteQuery/ExecutePrepared call — models the client/server
  /// round trip a 2001-era JDBC/DB2 stack pays per statement (trigger
  /// bodies run inside the engine and do NOT pay it; prepared statements
  /// pay the round trip but skip the parse). Default 0 (off); the Table 2
  /// bench uses it to reproduce the paper's cost regime (DESIGN.md).
  double statement_latency_us() const { return statement_latency_us_; }
  void set_statement_latency_us(double us) { statement_latency_us_ = us; }

  /// A next-id counter for the mapping layer (the paper's "systemwide next
  /// available id", §6.2.2).
  int64_t next_id() const { return next_id_; }
  void set_next_id(int64_t v) { next_id_ = v; }
  int64_t AllocateId() { return next_id_++; }
  /// Advances next_id by `count` and returns the first id of the block.
  int64_t AllocateIdBlock(int64_t count) {
    int64_t first = next_id_;
    next_id_ += count;
    return first;
  }

  struct TriggerDef {
    std::string name;
    std::string table;
    sql::TriggerGranularity granularity = sql::TriggerGranularity::kRow;
    std::vector<std::shared_ptr<sql::Statement>> body;
  };
  const std::vector<TriggerDef>& triggers() const { return triggers_; }

 private:
  friend class Executor;

  /// CREATE/DROP of any catalog object drops every cached plan (outstanding
  /// handles survive; re-Prepare of the same text is a miss).
  void InvalidateStatementCache();
  static bool IsDdl(const sql::Statement& stmt);

  /// Tables keyed by their original name, compared case-insensitively; the
  /// transparent comparator keeps FindTable allocation-free on the hot path.
  std::map<std::string, std::unique_ptr<Table>, AsciiCaseInsensitiveLess>
      tables_;
  std::vector<TriggerDef> triggers_;
  Stats stats_;
  int64_t next_id_ = 1;
  double statement_latency_us_ = 0;

  /// LRU prepared-statement cache: list front = most recently used; the
  /// index maps SQL text to its list node (transparent lookup, no copy).
  std::list<std::pair<std::string, StatementHandle>> cache_lru_;
  std::map<std::string, std::list<std::pair<std::string, StatementHandle>>::
                            iterator,
           std::less<>>
      cache_index_;
  size_t cache_capacity_ = 128;
};

}  // namespace xupd::rdb

#endif  // XUPD_RDB_DATABASE_H_
